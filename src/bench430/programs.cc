/**
 * @file
 * Benchmark bodies, part 1: the embedded sensor kernels
 * (mult, binSearch, tea8, intFilt, tHold, div, inSort).
 *
 * Conventions (see wrapBenchmarkBody): INPUT is the uninitialized RAM
 * window holding application inputs (X under symbolic analysis), OUT
 * receives results, ARR is scratch RAM; bodies run from `start` and
 * fall through (or jump) to `__done`.
 *
 * Symbolic-behaviour notes per kernel explain why Algorithm 1's
 * exploration stays small: either control flow is input-independent
 * (single path), or forked paths re-converge because the data that
 * differs is X on every path (state dedup, Algorithm 1 line 19).
 */

#include "bench430/benchmarks.hh"

namespace ulpeak {
namespace bench430 {

std::string
multBody()
{
    // 8 products on the hardware multiplier, 32-bit accumulation.
    // Input-independent control: a single symbolic path in which
    // every multiplication sees X operands -- the paper's example of
    // an application whose X-based bound is looser because the
    // multiplier's power is strongly input-dependent (Section 5).
    // The push/pop pair is the register-save idiom whose POP the
    // paper's OPT2 targets.
    return R"(
        mov #INPUT, r4
        mov #8, r5
        mov #0, r8
        mov #0, r9
mu_loop:
        push r8
        mov @r4+, &MPY
        mov @r4+, &OP2
        pop r8
        mov &RESLO, r10
        add r10, r8
        mov &RESHI, r10
        addc r10, r9
        dec r5
        jnz mu_loop
        mov r8, &OUT
        mov r9, &OUT+2
)";
}

std::string
binSearchBody()
{
    // Binary search of an X key over a sorted ROM table: every
    // comparison forks (taken/not-taken), giving the classic search
    // tree of paths; lo/hi stay concrete per path so the tree is
    // linear in the table size.
    return R"(
        mov &INPUT, r7
        mov #0, r4          ; lo
        mov #15, r5         ; hi
        mov #0xffff, r9     ; result: not found
bs_loop:
        cmp r4, r5
        jl bs_done          ; hi < lo (signed: hi may reach -1)
        mov r4, r6
        add r5, r6
        rra r6              ; mid
        mov r6, r10
        rla r10
        add #bs_table, r10
        mov @r10, r11
        cmp r11, r7         ; key - table[mid] (X flags: fork)
        jeq bs_found
        jlo bs_left
        mov r6, r4          ; lo = mid + 1
        inc r4
        jmp bs_loop
bs_left:
        mov r6, r5          ; hi = mid - 1
        dec r5
        jmp bs_loop
bs_found:
        mov r6, r9
bs_done:
        mov r9, &OUT
        jmp __done
bs_table:
        .word 3, 17, 29, 44, 58, 71, 89, 104
        .word 120, 137, 155, 170, 188, 203, 221, 240
)";
}

std::string
tea8Body()
{
    // 16-bit TEA-style Feistel cipher, 8 rounds: shift/xor/add only
    // (the paper's example of an application with little
    // input-induced power variation, so the X-based bound is tight).
    // v0=r4 v1=r5 k0..k3=r6..r9 sum=r12 round=r13 temps r10/r11.
    return R"(
        mov &INPUT, r4
        mov &INPUT+2, r5
        mov &INPUT+4, r6
        mov &INPUT+6, r7
        mov &INPUT+8, r8
        mov &INPUT+10, r9
        mov #0, r12
        mov #8, r13
te_round:
        add #0x9e37, r12    ; sum += delta
        ; v0 += ((v1<<4)+k0) ^ (v1+sum) ^ ((v1>>5)+k1)
        mov r5, r10
        rla r10
        rla r10
        rla r10
        rla r10
        add r6, r10
        mov r5, r11
        add r12, r11
        xor r11, r10
        mov r5, r11
        rra r11
        rra r11
        rra r11
        rra r11
        rra r11
        and #0x07ff, r11    ; logical >> 5
        add r7, r11
        xor r11, r10
        add r10, r4
        ; v1 += ((v0<<4)+k2) ^ (v0+sum) ^ ((v0>>5)+k3)
        mov r4, r10
        rla r10
        rla r10
        rla r10
        rla r10
        add r8, r10
        mov r4, r11
        add r12, r11
        xor r11, r10
        mov r4, r11
        rra r11
        rra r11
        rra r11
        rra r11
        rra r11
        and #0x07ff, r11
        add r9, r11
        xor r11, r10
        add r10, r5
        dec r13
        jnz te_round
        mov r4, &OUT
        mov r5, &OUT+2
)";
}

std::string
intFiltBody()
{
    // 4-tap integer FIR over 8 samples (5 outputs), MACs on the
    // hardware multiplier. The register-indexed loads are OPT1
    // material (Section 5.1).
    return R"(
        mov #0, r4          ; n
if_outer:
        mov #0, r8          ; acc
        mov #0, r5          ; j
if_inner:
        mov r4, r10
        add r5, r10
        rla r10
        mov INPUT(r10), r11 ; x[n+j] (register-indexed load)
        mov r11, &MPY
        mov r5, r11
        rla r11
        mov if_coef(r11), r11
        mov r11, &OP2
        add &RESLO, r8
        inc r5
        cmp #4, r5
        jne if_inner
        mov r4, r10
        rla r10
        mov r8, OUT(r10)    ; y[n]
        inc r4
        cmp #5, r4
        jne if_outer
        jmp __done
if_coef:
        .word 3, 11, 11, 3
)";
}

std::string
tHoldBody()
{
    // Threshold detector: count samples above 0x0400. Each compare
    // forks; paths with equal running counts re-converge (the count
    // is the only differing state), so exploration is quadratic, not
    // exponential. This is the paper's low-activity example (tHold
    // exercises the fewest gates at its peak, Figure 1.5a).
    return R"(
        mov #INPUT, r4
        mov #8, r5
        mov #0, r6
th_loop:
        mov @r4+, r8
        cmp #0x0400, r8     ; X flags: fork per sample
        jlo th_skip
        inc r6
th_skip:
        dec r5
        jnz th_loop
        mov r6, &OUT
)";
}

std::string
divBody()
{
    // Restoring division of an 8-bit X dividend by 11: the
    // conditional subtract forks on every iteration and the quotient
    // bits keep the paths distinct (a genuinely branchy kernel).
    return R"(
        mov &INPUT, r10
        and #0x00ff, r10
        swpb r10            ; dividend byte to bits 15:8
        mov #11, r11
        mov #0, r12         ; quotient
        mov #0, r13         ; remainder
        mov #8, r14
dv_loop:
        rla r12
        rla r10
        rlc r13
        cmp r11, r13        ; rem >= divisor? (X: fork)
        jlo dv_skip
        sub r11, r13
        bis #1, r12
dv_skip:
        dec r14
        jnz dv_loop
        mov r12, &OUT
        mov r13, &OUT+2
)";
}

std::string
inSortBody()
{
    // In-place insertion sort of 6 X elements. Every comparison
    // forks, but shifted elements are X on either path, so states
    // re-converge at equal (i, j) -- Algorithm 1's dedup is what
    // makes this kernel analyzable.
    return R"(
        mov #1, r4          ; i
is_outer:
        cmp #6, r4
        jeq is_done
        mov r4, r5
        rla r5
        mov INPUT(r5), r7   ; key = a[i]
        mov r4, r8          ; j
is_inner:
        tst r8
        jz is_place
        mov r8, r9
        rla r9
        add #INPUT-2, r9
        mov @r9, r10        ; a[j-1]
        cmp r10, r7         ; key >= a[j-1]? (X: fork)
        jhs is_place
        mov @r9, 2(r9)      ; shift right
        dec r8
        jmp is_inner
is_place:
        mov r8, r9
        rla r9
        add #INPUT, r9
        mov r7, 0(r9)
        inc r4
        jmp is_outer
is_done:
)";
}

} // namespace bench430
} // namespace ulpeak
