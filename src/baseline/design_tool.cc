#include "baseline/baselines.hh"

#include "power/statistical.hh"

namespace ulpeak {
namespace baseline {

DesignToolRating
designToolRating(const Netlist &nl, double freq_hz,
                 double default_toggle_rate)
{
    power::StatisticalResult sr =
        power::statisticalPower(nl, freq_hz, default_toggle_rate);
    DesignToolRating r;
    r.peakPowerW = sr.totalPowerW;
    // The rating knows nothing about dynamic variation: the energy
    // requirement is flat at the rated power (Section 5: "using a
    // design specification to determine peak energy is particularly
    // inaccurate, since it does not consider dynamic variations").
    r.npeJPerCycle = sr.totalPowerW / freq_hz;
    return r;
}

} // namespace baseline
} // namespace ulpeak
