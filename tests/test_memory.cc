/**
 * @file
 * Unit tests for the behavioral three-valued memory (Algorithm 1
 * line 2 semantics: everything not loaded from the binary reads X).
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"

namespace ulpeak {
namespace {

class MemoryTest : public ::testing::Test {
  protected:
    MemoryTest() : mem(0x0200, 0x0800, 0xf000) {}
    Memory mem;
};

TEST_F(MemoryTest, UninitializedRamReadsX)
{
    Word16 w = mem.read(0x0300);
    EXPECT_FALSE(w.isFullyKnown());
    EXPECT_EQ(w.xmask, 0xffff);
}

TEST_F(MemoryTest, WriteReadRoundTrip)
{
    mem.write(0x0300, Word16::known(0xbeef));
    EXPECT_EQ(mem.read(0x0300).value, 0xbeef);
    EXPECT_TRUE(mem.read(0x0300).isFullyKnown());
    // Partial-X words survive verbatim.
    Word16 partial(0x1200, 0x00ff);
    mem.write(0x0302, partial);
    EXPECT_TRUE(mem.read(0x0302) == partial);
}

TEST_F(MemoryTest, WordAlignment)
{
    mem.write(0x0300, Word16::known(0x1111));
    EXPECT_EQ(mem.read(0x0301).value, 0x1111)
        << "bit 0 of the address is ignored";
}

TEST_F(MemoryTest, RomLoadsAndRejectsWrites)
{
    mem.loadRom(0xf000, {0xaaaa, 0xbbbb});
    EXPECT_EQ(mem.read(0xf000).value, 0xaaaa);
    EXPECT_EQ(mem.read(0xf002).value, 0xbbbb);
    mem.write(0xf000, Word16::known(0x1234));
    EXPECT_EQ(mem.read(0xf000).value, 0xaaaa) << "ROM is read-only";
    // Unloaded ROM reads as erased flash.
    EXPECT_EQ(mem.read(0xf004).value, 0xffff);
}

TEST_F(MemoryTest, ResetClearsRamKeepsRom)
{
    mem.loadRom(0xf000, {0x1234});
    mem.write(0x0300, Word16::known(7));
    mem.loadRam(0x0400, {42});
    mem.reset();
    EXPECT_FALSE(mem.read(0x0300).isFullyKnown());
    EXPECT_FALSE(mem.read(0x0400).isFullyKnown());
    EXPECT_EQ(mem.read(0xf000).value, 0x1234);
}

TEST_F(MemoryTest, PoisonMarksInputRegions)
{
    mem.loadRam(0x0380, {1, 2, 3});
    mem.poisonRam(0x0380, 2);
    EXPECT_FALSE(mem.read(0x0380).isFullyKnown());
    EXPECT_FALSE(mem.read(0x0382).isFullyKnown());
    EXPECT_EQ(mem.read(0x0384).value, 3);
}

TEST_F(MemoryTest, SnapshotRestore)
{
    mem.write(0x0300, Word16::known(0x1111));
    Memory::Snapshot snap = mem.snapshot();
    uint64_t h0 = 0xcbf29ce484222325ull;
    mem.hashInto(h0);
    mem.write(0x0300, Word16::known(0x2222));
    uint64_t h1 = 0xcbf29ce484222325ull;
    mem.hashInto(h1);
    EXPECT_NE(h0, h1);
    mem.restore(snap);
    uint64_t h2 = 0xcbf29ce484222325ull;
    mem.hashInto(h2);
    EXPECT_EQ(h0, h2);
    EXPECT_EQ(mem.read(0x0300).value, 0x1111);
}

TEST_F(MemoryTest, RegionPredicates)
{
    EXPECT_TRUE(mem.inRam(0x0200));
    EXPECT_TRUE(mem.inRam(0x09fe));
    EXPECT_FALSE(mem.inRam(0x0a00));
    EXPECT_FALSE(mem.inRam(0x01ff));
    EXPECT_TRUE(mem.inRom(0xf000));
    EXPECT_TRUE(mem.inRom(0xfffe));
    EXPECT_FALSE(mem.inRom(0xefff));
    // Unmapped space reads all-X (floating bus under analysis).
    EXPECT_FALSE(mem.read(0x2000).isFullyKnown());
}

} // namespace
} // namespace ulpeak
