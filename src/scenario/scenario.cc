#include "scenario/scenario.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ulpeak {
namespace scenario {

namespace {

/// @name Minimal JSON reader
/// Just enough JSON for scenario files: objects, arrays, strings,
/// integers and bools. No external dependency; errors carry the
/// byte offset so a broken file is debuggable from the message.
/// @{
struct JsonValue {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text; ///< String payload
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser {
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters after the JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw std::runtime_error("scenario JSON, offset " +
                                 std::to_string(pos_) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 s_[pos_] + "'");
        ++pos_;
    }

    JsonValue
    value()
    {
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        fail("unexpected character");
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = string();
            // Reject duplicates instead of silently keeping the
            // first: a file saying {"vdd": 1.0, "vdd": 0.6} is a
            // mistake, not a preference.
            for (const auto &[k, existing] : v.members) {
                (void)existing;
                if (k == key.text)
                    fail("duplicate key \"" + key.text +
                         "\" in object");
            }
            expect(':');
            v.members.emplace_back(key.text, value());
            char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    string()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::String;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("unterminated escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': v.text += '"'; break;
                case '\\': v.text += '\\'; break;
                case '/': v.text += '/'; break;
                case 'n': v.text += '\n'; break;
                case 't': v.text += '\t'; break;
                case 'r': v.text += '\r'; break;
                default: fail("unsupported escape sequence");
                }
            } else {
                v.text += c;
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            fail("expected true/false");
        }
        return v;
    }

    JsonValue
    number()
    {
        size_t start = pos_;
        if (s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        JsonValue v;
        v.kind = JsonValue::Number;
        v.text = s_.substr(start, pos_ - start);
        try {
            v.number = std::stod(v.text);
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
};
/// @}

/** A JSON integer or a "0x.."/decimal string, range-checked. */
uint32_t
asUint(const JsonValue &v, uint32_t max, const char *what)
{
    long long n = 0;
    if (v.kind == JsonValue::Number) {
        // Range-check in double space before the cast: converting an
        // out-of-range double to an integer is undefined behavior.
        if (v.number < -9.3e18 || v.number > 9.3e18)
            throw std::runtime_error(std::string(what) +
                                     ": out of range [0, " +
                                     std::to_string(max) + "]");
        n = (long long)(v.number);
        if (double(n) != v.number)
            throw std::runtime_error(std::string(what) +
                                     ": not an integer");
    } else if (v.kind == JsonValue::String) {
        try {
            n = std::stoll(v.text, nullptr, 0);
        } catch (const std::exception &) {
            throw std::runtime_error(std::string(what) +
                                     ": bad number '" + v.text + "'");
        }
    } else {
        throw std::runtime_error(std::string(what) +
                                 ": expected a number");
    }
    if (n < 0 || (unsigned long long)(n) > max)
        throw std::runtime_error(std::string(what) +
                                 ": out of range [0, " +
                                 std::to_string(max) + "]");
    return uint32_t(n);
}

/** A positive JSON number (integer or scientific) or a numeric
 *  string; rejects zero, negatives, NaN and infinities. */
double
asPositiveDouble(const JsonValue &v, const char *what)
{
    double d = 0.0;
    if (v.kind == JsonValue::Number) {
        d = v.number;
    } else if (v.kind == JsonValue::String) {
        try {
            size_t used = 0;
            d = std::stod(v.text, &used);
            if (used != v.text.size())
                throw std::runtime_error("trailing characters");
        } catch (const std::exception &) {
            throw std::runtime_error(std::string(what) +
                                     ": bad number '" + v.text + "'");
        }
    } else {
        throw std::runtime_error(std::string(what) +
                                 ": expected a number");
    }
    if (!(d > 0.0) || !std::isfinite(d))
        throw std::runtime_error(std::string(what) +
                                 ": must be a positive finite number");
    return d;
}

PortPattern
patternFromJson(const JsonValue &v, const char *what)
{
    if (v.kind == JsonValue::String)
        return PortPattern::parse(v.text);
    if (v.kind == JsonValue::Object) {
        PortPattern p;
        if (const JsonValue *pin = v.find("pinned"))
            p.pinned = uint16_t(asUint(*pin, 0xffff, "pinned"));
        if (const JsonValue *val = v.find("value"))
            p.value = uint16_t(asUint(*val, 0xffff, "value"));
        p.value &= p.pinned; // free bits stay 0 (canonical form)
        return p;
    }
    throw std::runtime_error(
        std::string(what) +
        ": expected a 16-char pattern string or {pinned, value}");
}

} // namespace

std::string
PortPattern::toString() const
{
    std::string s(16, 'x');
    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = uint16_t(1u << (15 - i));
        if (pinned & m)
            s[i] = (value & m) ? '1' : '0';
    }
    return s;
}

PortPattern
PortPattern::parse(const std::string &s)
{
    if (s.size() != 16)
        throw std::runtime_error(
            "port pattern must be exactly 16 characters (MSB "
            "first), got \"" + s + "\"");
    PortPattern p;
    for (unsigned i = 0; i < 16; ++i) {
        uint16_t m = uint16_t(1u << (15 - i));
        switch (s[i]) {
        case '0':
            p.pinned |= m;
            break;
        case '1':
            p.pinned |= m;
            p.value |= m;
            break;
        case 'x':
        case 'X':
            break;
        default:
            throw std::runtime_error(
                "port pattern characters must be 0, 1 or x, got '" +
                std::string(1, s[i]) + "' in \"" + s + "\"");
        }
    }
    return p;
}

bool
Scenario::isUnconstrained() const
{
    if (!ramInit.empty() || !regInit.empty())
        return false;
    // Operating modes change the numbers (voltage-scaled energies,
    // per-mode clocks) even though they do not shrink the execution
    // set, so a mode-carrying scenario never reports as the classic
    // all-X flow.
    if (hasModes())
        return false;
    if (portSchedule.empty())
        return port.pinned == 0;
    return std::all_of(portSchedule.begin(), portSchedule.end(),
                       [](const PortPattern &p) {
                           return p.pinned == 0;
                       });
}

const PortPattern &
Scenario::patternAt(uint64_t cycle) const
{
    if (portSchedule.empty())
        return port;
    return portSchedule[size_t(cycle % portSchedule.size())];
}

std::vector<double>
Scenario::phaseTclkS() const
{
    std::vector<double> tclk;
    uint64_t period = modePeriod();
    tclk.reserve(size_t(period));
    for (uint64_t ph = 0; ph < period; ++ph)
        tclk.push_back(1.0 / modeAt(ph).freqHz);
    return tclk;
}

void
Scenario::validate() const
{
    if (!modeSchedule.empty() && modes.empty())
        throw std::runtime_error(
            "scenario '" + name +
            "': mode_schedule without any modes");
    for (size_t i = 0; i < modes.size(); ++i) {
        const OperatingMode &m = modes[i];
        if (!(m.vdd > 0.0) || !std::isfinite(m.vdd))
            throw std::runtime_error(
                "scenario '" + name + "': mode '" + m.name +
                "': vdd must be a positive finite voltage");
        if (!(m.freqHz > 0.0) || !std::isfinite(m.freqHz))
            throw std::runtime_error(
                "scenario '" + name + "': mode '" + m.name +
                "': freq_hz must be a positive finite frequency");
        for (size_t j = i + 1; j < modes.size(); ++j)
            if (modes[j].name == m.name)
                throw std::runtime_error(
                    "scenario '" + name + "': duplicate mode name '" +
                    m.name + "'");
    }
    for (uint32_t idx : modeSchedule)
        if (idx >= modes.size())
            throw std::runtime_error(
                "scenario '" + name + "': mode_schedule index " +
                std::to_string(idx) + " out of range (have " +
                std::to_string(modes.size()) + " modes)");
    for (const ModeAssertion &a : assertions) {
        bool known = false;
        for (const OperatingMode &m : modes)
            known = known || m.name == a.mode;
        if (!known)
            throw std::runtime_error(
                "scenario '" + name + "': assertion names unknown "
                "mode '" + a.mode + "'");
        if (!(a.maxPowerW > 0.0) || !std::isfinite(a.maxPowerW))
            throw std::runtime_error(
                "scenario '" + name + "': assertion on mode '" +
                a.mode +
                "': max_power_w must be a positive finite power");
    }
}

void
Scenario::hashInto(uint64_t &h) const
{
    auto mix = [&h](uint64_t x) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (x >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    // Content only, never the name: renaming a scenario must keep
    // cache entries valid, and two differently-named identical
    // scenarios must share them.
    mix(port.pinned);
    mix(port.value);
    mix(portSchedule.size());
    for (const PortPattern &p : portSchedule) {
        mix(p.pinned);
        mix(p.value);
    }
    mix(ramInit.size());
    for (const auto &[addr, words] : ramInit) {
        mix(addr);
        mix(words.size());
        for (uint16_t w : words)
            mix(w);
    }
    mix(regInit.size());
    for (const auto &[reg, value] : regInit) {
        mix(reg);
        mix(value);
    }
    // Modes hash by their numeric content (exact double bit
    // patterns) and the schedule by its indices; mode *names* and
    // the assertion list stay out -- assertions are post-processing
    // over the envelope, never inputs to the analysis, so two
    // scenarios differing only in assertions share cache entries.
    auto mixDouble = [&mix](double d) {
        uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof bits);
        mix(bits);
    };
    mix(modes.size());
    for (const OperatingMode &m : modes) {
        mixDouble(m.vdd);
        mixDouble(m.freqHz);
    }
    mix(modeSchedule.size());
    for (uint32_t idx : modeSchedule)
        mix(idx);
}

std::string
Scenario::summary() const
{
    if (isUnconstrained())
        return "unconstrained (all-X ports)";
    std::ostringstream os;
    if (portSchedule.empty()) {
        os << "port " << port.toString();
    } else {
        os << "port schedule period " << portSchedule.size() << " ["
           << portSchedule.front().toString() << ", ...]";
    }
    if (!ramInit.empty())
        os << ", " << ramInit.size() << " RAM range"
           << (ramInit.size() > 1 ? "s" : "");
    if (!regInit.empty())
        os << ", " << regInit.size() << " register"
           << (regInit.size() > 1 ? "s" : "");
    if (hasModes()) {
        os << ", " << modes.size() << " mode"
           << (modes.size() > 1 ? "s" : "");
        if (!modeSchedule.empty())
            os << " period " << modeSchedule.size();
    }
    return os.str();
}

const std::vector<std::string> &
Scenario::presetNames()
{
    static const std::vector<std::string> names = {
        "unconstrained",
        "ports-grounded",
        "sensor-4bit",
        "periodic-sensor",
        "duty-cycled-dvfs",
    };
    return names;
}

Scenario
Scenario::preset(const std::string &name)
{
    Scenario s;
    s.name = name;
    if (name == "unconstrained")
        return s;
    if (name == "ports-grounded") {
        // Every peripheral pin strapped low: the tightest
        // environment, bounds driven by the application alone.
        s.port.pinned = 0xffff;
        s.port.value = 0;
        return s;
    }
    if (name == "sensor-4bit") {
        // A 4-bit sensor on the low nibble, everything else
        // grounded -- the paper's "constrained peripheral" shape.
        s.port.pinned = 0xfff0;
        s.port.value = 0;
        return s;
    }
    if (name == "periodic-sensor") {
        // A sampled sensor: the port floats (all X) one cycle in
        // eight and is grounded in between.
        PortPattern sample;                    // all X
        PortPattern grounded{0xffff, 0};
        s.portSchedule.assign(8, grounded);
        s.portSchedule[0] = sample;
        return s;
    }
    if (name == "duty-cycled-dvfs") {
        // The duty-cycled deployment of ROADMAP item 3: two cycles
        // of full-speed burst, six cycles of low-voltage sleep, on
        // an eight-cycle period. Ports stay all-X so the operating
        // modes are the only constraint in play.
        s.modes.push_back({"burst", 1.0, 100e6});
        s.modes.push_back({"sleep", 0.6, 8e6});
        s.modeSchedule = {0, 0, 1, 1, 1, 1, 1, 1};
        return s;
    }
    std::string known;
    for (const std::string &n : presetNames())
        known += (known.empty() ? "" : ", ") + n;
    throw std::runtime_error("unknown scenario '" + name +
                             "' (known presets: " + known +
                             ", or a .json path)");
}

Scenario
Scenario::fromJson(const std::string &text)
{
    JsonValue root = JsonParser(text).parse();
    if (root.kind != JsonValue::Object)
        throw std::runtime_error(
            "scenario JSON: top level must be an object");
    Scenario s;
    s.name = "custom";
    // By-name mode_schedule entries, resolved after the full parse
    // ("" marks an already-numeric entry).
    std::vector<std::string> mode_names;
    for (const auto &[key, v] : root.members) {
        if (key == "name") {
            if (v.kind != JsonValue::String)
                throw std::runtime_error("name: expected a string");
            s.name = v.text;
        } else if (key == "port") {
            s.port = patternFromJson(v, "port");
        } else if (key == "port_schedule") {
            if (v.kind != JsonValue::Array)
                throw std::runtime_error(
                    "port_schedule: expected an array");
            for (const JsonValue &e : v.items)
                s.portSchedule.push_back(
                    patternFromJson(e, "port_schedule entry"));
        } else if (key == "ram_init") {
            if (v.kind != JsonValue::Array)
                throw std::runtime_error("ram_init: expected an array");
            for (const JsonValue &e : v.items) {
                if (e.kind != JsonValue::Object || !e.find("addr") ||
                    !e.find("words"))
                    throw std::runtime_error(
                        "ram_init entries must be {addr, words}");
                uint32_t addr =
                    asUint(*e.find("addr"), 0xffff, "ram_init addr");
                if (addr & 1)
                    throw std::runtime_error(
                        "ram_init addr must be word-aligned");
                const JsonValue &wv = *e.find("words");
                if (wv.kind != JsonValue::Array || wv.items.empty())
                    throw std::runtime_error(
                        "ram_init words: expected a non-empty array");
                std::vector<uint16_t> words;
                for (const JsonValue &w : wv.items)
                    words.push_back(
                        uint16_t(asUint(w, 0xffff, "ram_init word")));
                s.ramInit.emplace_back(addr, std::move(words));
            }
        } else if (key == "reg_init") {
            if (v.kind != JsonValue::Array)
                throw std::runtime_error("reg_init: expected an array");
            for (const JsonValue &e : v.items) {
                if (e.kind != JsonValue::Object || !e.find("reg") ||
                    !e.find("value"))
                    throw std::runtime_error(
                        "reg_init entries must be {reg, value}");
                uint32_t reg =
                    asUint(*e.find("reg"), 15, "reg_init reg");
                if (reg < 4)
                    throw std::runtime_error(
                        "reg_init reg must be a general-purpose "
                        "register (4..15); r0-r3 are pc/sp/sr/cg");
                uint32_t val = asUint(*e.find("value"), 0xffff,
                                      "reg_init value");
                s.regInit.emplace_back(reg, uint16_t(val));
            }
        } else if (key == "modes") {
            if (v.kind != JsonValue::Array)
                throw std::runtime_error("modes: expected an array");
            for (const JsonValue &e : v.items) {
                if (e.kind != JsonValue::Object || !e.find("name") ||
                    !e.find("vdd") || !e.find("freq_hz"))
                    throw std::runtime_error(
                        "modes entries must be {name, vdd, freq_hz}");
                const JsonValue &nv = *e.find("name");
                if (nv.kind != JsonValue::String || nv.text.empty())
                    throw std::runtime_error(
                        "modes name: expected a non-empty string");
                OperatingMode m;
                m.name = nv.text;
                m.vdd = asPositiveDouble(*e.find("vdd"), "mode vdd");
                m.freqHz = asPositiveDouble(*e.find("freq_hz"),
                                            "mode freq_hz");
                s.modes.push_back(std::move(m));
            }
        } else if (key == "mode_schedule") {
            if (v.kind != JsonValue::Array || v.items.empty())
                throw std::runtime_error(
                    "mode_schedule: expected a non-empty array");
            for (const JsonValue &e : v.items) {
                if (e.kind == JsonValue::String) {
                    // Resolved against the modes array after the
                    // whole object is read (key order is free).
                    s.modeSchedule.push_back(0xffffffffu);
                    mode_names.push_back(e.text);
                } else {
                    s.modeSchedule.push_back(asUint(
                        e, 0xfffffffe, "mode_schedule index"));
                    mode_names.emplace_back();
                }
            }
        } else if (key == "assert") {
            if (v.kind != JsonValue::Array)
                throw std::runtime_error("assert: expected an array");
            for (const JsonValue &e : v.items) {
                if (e.kind != JsonValue::Object || !e.find("mode") ||
                    !e.find("max_power_w"))
                    throw std::runtime_error(
                        "assert entries must be {mode, max_power_w"
                        "[, settle_cycles]}");
                const JsonValue &mv = *e.find("mode");
                if (mv.kind != JsonValue::String)
                    throw std::runtime_error(
                        "assert mode: expected a mode name string");
                ModeAssertion a;
                a.mode = mv.text;
                a.maxPowerW = asPositiveDouble(*e.find("max_power_w"),
                                               "assert max_power_w");
                if (const JsonValue *sc = e.find("settle_cycles"))
                    a.settleCycles = asUint(*sc, 0xffffffffu,
                                            "assert settle_cycles");
                s.assertions.push_back(std::move(a));
            }
        } else {
            throw std::runtime_error("unknown scenario key '" + key +
                                     "'");
        }
    }
    // Resolve by-name mode_schedule entries now that every mode has
    // been read regardless of key order.
    for (size_t i = 0; i < s.modeSchedule.size(); ++i) {
        if (mode_names[i].empty())
            continue;
        uint32_t idx = 0xffffffffu;
        for (size_t m = 0; m < s.modes.size(); ++m)
            if (s.modes[m].name == mode_names[i])
                idx = uint32_t(m);
        if (idx == 0xffffffffu)
            throw std::runtime_error(
                "mode_schedule: unknown mode name '" + mode_names[i] +
                "'");
        s.modeSchedule[i] = idx;
    }
    s.validate();
    return s;
}

Scenario
Scenario::fromJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read scenario file: " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    try {
        Scenario s = fromJson(ss.str());
        if (s.name == "custom") {
            // Default the name to the file stem for reports.
            size_t slash = path.find_last_of('/');
            std::string base = slash == std::string::npos
                                   ? path
                                   : path.substr(slash + 1);
            size_t dot = base.find_last_of('.');
            s.name = dot == std::string::npos ? base
                                              : base.substr(0, dot);
        }
        return s;
    } catch (const std::exception &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

Scenario
Scenario::resolve(const std::string &spec)
{
    auto endsWith = [&](const char *suf) {
        size_t n = std::string(suf).size();
        return spec.size() > n &&
               spec.compare(spec.size() - n, n, suf) == 0;
    };
    if (spec.find('/') != std::string::npos || endsWith(".json"))
        return fromJsonFile(spec);
    return preset(spec);
}

} // namespace scenario
} // namespace ulpeak
