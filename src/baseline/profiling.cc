#include "baseline/baselines.hh"

#include <algorithm>
#include <stdexcept>

namespace ulpeak {
namespace baseline {

ProfilingResult
profile(msp::System &sys, const isa::Image &image,
        const std::vector<InputSet> &inputs, double freq_hz)
{
    if (inputs.empty())
        throw std::invalid_argument("profiling needs input sets");

    power::PowerContext ctx(sys.netlist(), freq_hz);
    ProfilingResult r;
    for (const InputSet &in : inputs) {
        power::ConcreteRunOptions opts;
        opts.recordTrace = false;
        opts.portIn = in.portIn;
        power::ConcreteRunResult run =
            power::runConcrete(sys, image, ctx, opts, in.ram);
        if (!run.halted)
            throw std::runtime_error(
                "profiling run did not halt (input-dependent hang?)");
        r.peaksW.push_back(run.stats.peakW);
        r.npesJPerCycle.push_back(run.npeJPerCycle());
        r.cyclesLastRun = run.stats.cycles;
    }
    r.peakPowerW = *std::max_element(r.peaksW.begin(), r.peaksW.end());
    r.minPeakPowerW =
        *std::min_element(r.peaksW.begin(), r.peaksW.end());
    r.npeJPerCycle = *std::max_element(r.npesJPerCycle.begin(),
                                       r.npesJPerCycle.end());
    r.minNpeJPerCycle = *std::min_element(r.npesJPerCycle.begin(),
                                          r.npesJPerCycle.end());
    r.gbPeakPowerW = r.peakPowerW * kGuardband;
    r.gbNpeJPerCycle = r.npeJPerCycle * kGuardband;
    return r;
}

} // namespace baseline
} // namespace ulpeak
