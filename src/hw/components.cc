/**
 * @file
 * Structural arithmetic components built from library cells.
 */

#include <cassert>

#include "hw/builder.hh"

namespace ulpeak {
namespace hw {

namespace {

/** One full-adder bit: 5 cells. */
Sig
fullAdder(Builder &b, Sig a, Sig x, Sig cin, Sig &cout)
{
    Sig p = b.xor2(a, x);
    Sig s = b.xor2(p, cin);
    Sig g1 = b.and2(a, x);
    Sig g2 = b.and2(p, cin);
    cout = b.or2(g1, g2);
    return s;
}

} // namespace

AddResult
adder(Builder &b, const Bus &a, const Bus &bb, Sig carryIn)
{
    assert(a.size() == bb.size());
    AddResult r;
    r.sum.resize(a.size());
    Sig carry = carryIn;
    for (size_t i = 0; i < a.size(); ++i)
        r.sum[i] = fullAdder(b, a[i], bb[i], carry, carry);
    r.carryOut = carry;
    return r;
}

AddResult
subtractor(Builder &b, const Bus &a, const Bus &bb)
{
    return adder(b, a, b.busNot(bb), b.one());
}

Bus
addConst(Builder &b, const Bus &a, uint32_t k)
{
    return adder(b, a, b.busConst(unsigned(a.size()), k), b.zero()).sum;
}

Sig
equal(Builder &b, const Bus &a, const Bus &bb)
{
    assert(a.size() == bb.size());
    Bus eqs(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        eqs[i] = b.xnor2(a[i], bb[i]);
    return b.andN(eqs);
}

Sig
equalConst(Builder &b, const Bus &a, uint32_t k)
{
    Bus terms(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        terms[i] = (k >> i) & 1 ? a[i] : b.inv(a[i]);
    return b.andN(terms);
}

std::vector<Sig>
decoder(Builder &b, const Bus &sel)
{
    size_t n = size_t(1) << sel.size();
    std::vector<Sig> out(n);
    for (size_t v = 0; v < n; ++v)
        out[v] = equalConst(b, sel, uint32_t(v));
    return out;
}

Bus
arrayMultiplier(Builder &b, const Bus &a, const Bus &bb)
{
    const size_t n = a.size();
    assert(bb.size() == n);

    // Row 0 of partial products initializes the running sum.
    Bus acc(2 * n, b.zero());
    for (size_t i = 0; i < n; ++i)
        acc[i] = b.and2(a[i], bb[0]);

    // Each subsequent row adds (a & b[j]) << j into the accumulator with
    // an n-bit ripple-carry adder whose carry extends into bit n + j.
    for (size_t j = 1; j < n; ++j) {
        Bus pp(n);
        for (size_t i = 0; i < n; ++i)
            pp[i] = b.and2(a[i], bb[j]);
        Sig carry = b.zero();
        for (size_t i = 0; i < n; ++i) {
            acc[i + j] = fullAdder(b, acc[i + j], pp[i], carry, carry);
        }
        if (j + n < 2 * n)
            acc[j + n] = carry;
    }
    return acc;
}

} // namespace hw
} // namespace ulpeak
