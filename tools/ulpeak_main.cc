/**
 * @file
 * Entry point of the `ulpeak` tool. All logic lives in cli::runCli so
 * the driver is testable without spawning a process.
 */

#include "cli/driver.hh"

int
main(int argc, char **argv)
{
    return ulpeak::cli::runCli(argc, argv);
}
