/**
 * @file
 * Randomized co-simulation of the gate-level core against the golden
 * ISS -- the verification that stands in for the paper's use of a
 * silicon-proven openMSP430. Random programs are generated from
 * instruction templates over all supported opcodes and addressing
 * modes, run on both models with the same inputs, and compared on
 * final architectural state (registers, RAM, port output) and cycle
 * counts.
 */

#include <gtest/gtest.h>

#include "fuzz/rng.hh"

#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

using test::sharedSystem;

/** Random but well-formed program generator. */
class ProgramFuzzer {
  public:
    explicit ProgramFuzzer(uint32_t seed) : rng_(seed) {}

    std::string
    generate(unsigned instructions)
    {
        std::string body;
        // Deterministic setup: stack, watchdog hold, a concrete SR and
        // r3 (so every architectural register the test compares is
        // known in the gate model too), seed registers and a RAM
        // window so memory operands are meaningful.
        body += "  mov #0x0a00, sp\n";
        body += "  mov #0x5a80, &0x0120\n";
        body += "  mov #0, sr\n";
        body += "  mov #0, r3\n";
        for (unsigned r = 4; r <= 15; ++r)
            body += "  mov #" + std::to_string(pick16()) + ", r" +
                    std::to_string(r) + "\n";
        body += "  mov #0x0300, r12\n"; // base pointer kept stable
        for (unsigned i = 0; i < 16; ++i)
            body += "  mov #" + std::to_string(pick16()) + ", " +
                    std::to_string(2 * i) + "(r12)\n";

        for (unsigned i = 0; i < instructions; ++i)
            body += "  " + randomInstr(i) + "\n";
        return body;
    }

  private:
    uint16_t
    pick16()
    {
        return rng_.word();
    }

    unsigned
    below(unsigned n)
    {
        return rng_.below(n);
    }

    std::string
    reg()
    {
        // r4-r11 are fair game; r12 stays the RAM base.
        return "r" + std::to_string(4 + below(8));
    }

    std::string
    memOff()
    {
        return std::to_string(2 * below(8)) + "(r12)";
    }

    std::string
    src()
    {
        switch (below(6)) {
          case 0: return reg();
          case 1: return "#" + std::to_string(pick16());
          case 2: {
            static const char *cg[] = {"#0", "#1", "#2", "#4", "#8",
                                       "#-1"};
            return cg[below(6)];
          }
          case 3: return memOff();
          case 4: return "@r12";
          default: return "&0x0" + std::to_string(300 + 2 * below(8));
        }
    }

    std::string
    dst()
    {
        switch (below(3)) {
          case 0: return reg();
          case 1: return memOff();
          default: return "&0x0" + std::to_string(310 + 2 * below(4));
        }
    }

    std::string
    randomInstr(unsigned index)
    {
        switch (below(14)) {
          case 0: return "mov " + src() + ", " + dst();
          case 1: return "add " + src() + ", " + dst();
          case 2: return "addc " + src() + ", " + dst();
          case 3: return "sub " + src() + ", " + dst();
          case 4: return "subc " + src() + ", " + dst();
          case 5: return "cmp " + src() + ", " + dst();
          case 6: return "bit " + src() + ", " + dst();
          case 7: return "bic " + src() + ", " + dst();
          case 8: return "bis " + src() + ", " + dst();
          case 9: return "xor " + src() + ", " + dst();
          case 10: return "and " + src() + ", " + dst();
          case 11: {
            static const char *ops[] = {"rra", "rrc", "swpb", "sxt"};
            return std::string(ops[below(4)]) + " " + reg();
          }
          case 12: {
            // Forward-only short conditional jump: always
            // well-structured, no irreducible control flow.
            static const char *jmps[] = {"jne", "jeq", "jc",  "jnc",
                                         "jn",  "jge", "jl"};
            return std::string(jmps[below(7)]) + " fwd" +
                   std::to_string(index) + "\nfwd" +
                   std::to_string(index) + ":";
          }
          default:
            if (below(2))
                return "push " + src() + "\n  pop " + reg();
            return "mov @r12+, " + reg() + "\n  sub #2, r12";
        }
    }

    fuzz::Rng rng_;
};

class EquivalenceFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EquivalenceFuzz, GateCoreMatchesIss)
{
    ProgramFuzzer fuzz(GetParam());
    std::string body = fuzz.generate(24);
    std::string source = test::wrapProgram(body);
    SCOPED_TRACE(source);
    isa::Image image = isa::assemble(source);

    uint16_t port = uint16_t(0x1111 * (GetParam() + 1));

    isa::Iss iss;
    iss.loadImage(image);
    iss.setPortIn(port);
    iss.reset();
    ASSERT_TRUE(iss.run(4000)) << iss.haltReason();

    msp::System &sys = sharedSystem();
    test::GateRun gate = test::runGate(sys, image, port);
    ASSERT_TRUE(gate.halted);
    ASSERT_FALSE(gate.xStoreFault);

    for (unsigned r = 2; r < 16; ++r) {
        ASSERT_TRUE(gate.regKnown[r]) << "r" << r << " has X bits";
        EXPECT_EQ(gate.regs[r], iss.reg(r)) << "r" << r;
    }
    // RAM window must agree word for word.
    for (uint32_t a = 0x0300; a < 0x0320; a += 2) {
        Word16 w = sys.memory().read(a);
        ASSERT_TRUE(w.isFullyKnown()) << std::hex << a;
        EXPECT_EQ(w.value, iss.readMem(a)) << std::hex << a;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceFuzz,
                         ::testing::Range(0u, 24u));

TEST(EquivalenceCycles, GateCyclesTrackMicroPlan)
{
    // Cycle parity between the FSM and the MicroPlan-based ISS
    // accounting on a branchy, multi-addressing-mode program.
    std::string source = test::wrapProgram(R"(
        mov #0x0a00, sp
        mov #0x5a80, &0x0120
        mov #6, r4
        mov #0, r5
loop:
        add r4, r5
        push r4
        pop r6
        dec r4
        jnz loop
        mov r5, &0x0300
        mov &0x0300, r7
    )");
    isa::Image image = isa::assemble(source);

    isa::Iss iss;
    iss.loadImage(image);
    iss.reset();
    ASSERT_TRUE(iss.run(4000));

    msp::System &sys = sharedSystem();
    test::GateRun gate = test::runGate(sys, image, 0);
    ASSERT_TRUE(gate.halted);
    EXPECT_EQ(gate.cycles, iss.cycles())
        << "FSM schedule must equal the MicroPlan schedule";
}

} // namespace
} // namespace ulpeak
