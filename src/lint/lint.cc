#include "lint/lint.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

#include "cell/cell_library.hh"

namespace ulpeak {
namespace lint {

namespace {

/** Fanin/consumer CSR adjacency built from the construction-phase
 *  gate records, so the passes run on netlists that cannot finalize
 *  (a combinational loop is fatal to finalize(), and finding it is
 *  the point). On a finalized netlist this is exactly the adjacency
 *  flat() carries, with sequential consumers folded back in. */
struct Adjacency {
    uint32_t n = 0;
    std::vector<uint32_t> consumerOffset; ///< [n + 1]
    std::vector<GateId> consumer;         ///< gates reading each net

    explicit Adjacency(const Netlist &nl)
        : n(uint32_t(nl.numGates())), consumerOffset(n + 1, 0)
    {
        for (uint32_t g = 0; g < n; ++g) {
            const Gate &gt = nl.gate(g);
            for (unsigned i = 0; i < gt.nin; ++i)
                if (gt.in[i] < n)
                    ++consumerOffset[gt.in[i] + 1];
        }
        for (uint32_t g = 0; g < n; ++g)
            consumerOffset[g + 1] += consumerOffset[g];
        consumer.resize(consumerOffset[n]);
        std::vector<uint32_t> fill(consumerOffset.begin(),
                                   consumerOffset.end() - 1);
        for (uint32_t g = 0; g < n; ++g) {
            const Gate &gt = nl.gate(g);
            for (unsigned i = 0; i < gt.nin; ++i)
                if (gt.in[i] < n)
                    consumer[fill[gt.in[i]]++] = g;
        }
    }
};

std::string
describeGate(const Netlist &nl, GateId g)
{
    std::ostringstream os;
    os << "g" << g << " (" << cellName(nl.gate(g).kind);
    std::string name = nl.gateName(g);
    if (!name.empty())
        os << " '" << name << "'";
    os << ")";
    return os.str();
}

/** Iterative Tarjan SCC restricted to combinational gates; every
 *  component of size > 1 (or with a self-edge) is a latch-free
 *  cycle. Sequential gates break paths by construction. */
void
findCombLoops(const Netlist &nl, std::vector<Issue> &issues)
{
    const uint32_t n = uint32_t(nl.numGates());
    constexpr uint32_t kUnvisited = 0;
    std::vector<uint32_t> index(n, kUnvisited), lowlink(n, 0);
    std::vector<uint8_t> onStack(n, 0);
    std::vector<GateId> stack;
    uint32_t next = 1;

    auto isComb = [&](GateId g) {
        return g < n && !isSequential(nl.gate(g).kind);
    };

    struct Frame {
        GateId g;
        unsigned pin;
    };
    std::vector<Frame> dfs;

    for (uint32_t root = 0; root < n; ++root) {
        if (index[root] != kUnvisited || !isComb(root))
            continue;
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = next++;
        stack.push_back(root);
        onStack[root] = 1;
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            const Gate &gt = nl.gate(f.g);
            if (f.pin < gt.nin) {
                GateId s = gt.in[f.pin++];
                if (!isComb(s))
                    continue;
                if (index[s] == kUnvisited) {
                    index[s] = lowlink[s] = next++;
                    stack.push_back(s);
                    onStack[s] = 1;
                    dfs.push_back({s, 0});
                } else if (onStack[s]) {
                    lowlink[f.g] = std::min(lowlink[f.g], index[s]);
                }
                continue;
            }
            GateId g = f.g;
            dfs.pop_back();
            if (!dfs.empty())
                lowlink[dfs.back().g] =
                    std::min(lowlink[dfs.back().g], lowlink[g]);
            if (lowlink[g] != index[g])
                continue;
            std::vector<GateId> scc;
            for (;;) {
                GateId m = stack.back();
                stack.pop_back();
                onStack[m] = 0;
                scc.push_back(m);
                if (m == g)
                    break;
            }
            bool selfLoop = false;
            if (scc.size() == 1) {
                const Gate &sg = nl.gate(scc[0]);
                for (unsigned i = 0; i < sg.nin; ++i)
                    selfLoop |= sg.in[i] == scc[0];
            }
            if (scc.size() > 1 || selfLoop) {
                std::sort(scc.begin(), scc.end());
                Issue is;
                is.kind = IssueKind::CombLoop;
                is.severity = Severity::Error;
                is.gates = scc;
                std::ostringstream os;
                os << "combinational loop of " << scc.size()
                   << " gate(s) through " << describeGate(nl, scc[0]);
                is.message = os.str();
                issues.push_back(std::move(is));
            }
        }
    }
}

void
findFloatingInputs(const Netlist &nl, std::vector<Issue> &issues)
{
    const uint32_t n = uint32_t(nl.numGates());
    for (uint32_t g = 0; g < n; ++g) {
        const Gate &gt = nl.gate(g);
        for (unsigned i = 0; i < gt.nin; ++i) {
            if (gt.in[i] < n)
                continue;
            Issue is;
            is.kind = IssueKind::FloatingInput;
            is.severity = Severity::Error;
            is.gates = {g};
            std::ostringstream os;
            os << describeGate(nl, g) << ": fanin pin " << i
               << " is unconnected";
            is.message = os.str();
            issues.push_back(std::move(is));
            break; // one issue per gate
        }
    }
}

void
findMultiDrivers(const Netlist &nl, std::vector<Issue> &issues)
{
    const uint32_t n = uint32_t(nl.numGates());
    // Gate id == net id, so a net has exactly one structural driver;
    // the only way to double-drive is through behavioral hooks: two
    // hooks claiming the same output, or a hook claiming a net whose
    // gate already computes a value (anything but a fanin-less
    // Input).
    std::vector<uint32_t> hookDrivers(n, 0);
    for (const BehavioralHook &h : nl.hooks())
        for (GateId g : h.outputs)
            if (g < n)
                ++hookDrivers[g];
    for (uint32_t g = 0; g < n; ++g) {
        uint32_t drivers = hookDrivers[g];
        if (drivers == 0)
            continue;
        bool selfDriven = nl.gate(g).kind != CellKind::Input;
        if (drivers + (selfDriven ? 1 : 0) < 2)
            continue;
        Issue is;
        is.kind = IssueKind::MultiDriver;
        is.severity = Severity::Error;
        is.gates = {g};
        std::ostringstream os;
        os << describeGate(nl, g) << ": driven by " << drivers
           << " hook(s)"
           << (selfDriven ? " and its own cell evaluation" : "");
        is.message = os.str();
        issues.push_back(std::move(is));
    }
}

size_t
findDeadGates(const Netlist &nl, const StructuralOptions &opts,
              std::vector<Issue> &issues)
{
    const uint32_t n = uint32_t(nl.numGates());
    // Observation points: named gates (the CPU's architectural
    // state and interface nets) and every gate a behavioral hook
    // reads. Anything that cannot reach one through the fanin
    // closure can never influence an observable value.
    std::vector<uint8_t> alive(n, 0);
    std::vector<GateId> work;
    auto mark = [&](GateId g) {
        if (g < n && !alive[g]) {
            alive[g] = 1;
            work.push_back(g);
        }
    };
    for (const auto &kv : nl.namedGates())
        mark(kv.second);
    for (const BehavioralHook &h : nl.hooks())
        for (GateId g : h.depends)
            mark(g);
    while (!work.empty()) {
        GateId g = work.back();
        work.pop_back();
        const Gate &gt = nl.gate(g);
        for (unsigned i = 0; i < gt.nin; ++i)
            mark(gt.in[i]);
    }
    std::vector<GateId> dead;
    for (uint32_t g = 0; g < n; ++g)
        if (!alive[g])
            dead.push_back(g);
    if (dead.empty())
        return 0;
    Issue is;
    is.kind = IssueKind::DeadGate;
    is.severity = Severity::Warning;
    size_t listed =
        std::min<size_t>(dead.size(), opts.maxListedDeadGates);
    is.gates.assign(dead.begin(), dead.begin() + listed);
    std::ostringstream os;
    os << dead.size() << " gate(s) reach no observation point, first "
       << describeGate(nl, dead[0]);
    is.message = os.str();
    issues.push_back(std::move(is));
    return dead.size();
}

uint32_t
findFanoutHotspots(const Netlist &nl, const Adjacency &adj,
                   const StructuralOptions &opts,
                   std::vector<Issue> &issues)
{
    const uint32_t n = adj.n;
    uint32_t threshold = opts.fanoutHotspotThreshold;
    if (threshold == 0)
        threshold = std::max<uint32_t>(64, n / 16);
    std::vector<std::pair<uint32_t, GateId>> hot; // (count, gate)
    for (uint32_t g = 0; g < n; ++g) {
        uint32_t c = adj.consumerOffset[g + 1] - adj.consumerOffset[g];
        if (c >= threshold)
            hot.push_back({c, g});
    }
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.first != b.first ? a.first > b.first
                                  : a.second < b.second;
    });
    if (hot.size() > opts.maxHotspots)
        hot.resize(opts.maxHotspots);
    for (const auto &hc : hot) {
        Issue is;
        is.kind = IssueKind::FanoutHotspot;
        is.severity = Severity::Info;
        is.gates = {hc.second};
        std::ostringstream os;
        os << describeGate(nl, hc.second) << ": fanout " << hc.first
           << " (threshold " << threshold << ")";
        is.message = os.str();
        issues.push_back(std::move(is));
    }
    return threshold;
}

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Info:
        return "info";
    }
    return "?";
}

const char *
issueKindName(IssueKind k)
{
    switch (k) {
      case IssueKind::CombLoop:
        return "comb-loop";
      case IssueKind::FloatingInput:
        return "floating-input";
      case IssueKind::MultiDriver:
        return "multi-driver";
      case IssueKind::DeadGate:
        return "dead-gate";
      case IssueKind::FanoutHotspot:
        return "fanout-hotspot";
    }
    return "?";
}

size_t
StructuralReport::count(IssueKind k) const
{
    size_t c = 0;
    for (const Issue &is : issues)
        c += is.kind == k;
    return c;
}

size_t
StructuralReport::errors() const
{
    size_t c = 0;
    for (const Issue &is : issues)
        c += is.severity == Severity::Error;
    return c;
}

StructuralReport
structuralLint(const Netlist &nl, const StructuralOptions &opts)
{
    StructuralReport rep;
    Adjacency adj(nl);
    findCombLoops(nl, rep.issues);
    findFloatingInputs(nl, rep.issues);
    findMultiDrivers(nl, rep.issues);
    rep.deadGates = findDeadGates(nl, opts, rep.issues);
    rep.fanoutHotspotThreshold =
        findFanoutHotspots(nl, adj, opts, rep.issues);
    std::stable_sort(rep.issues.begin(), rep.issues.end(),
                     [](const Issue &a, const Issue &b) {
                         if (a.kind != b.kind)
                             return a.kind < b.kind;
                         GateId ga = a.gates.empty() ? 0 : a.gates[0];
                         GateId gb = b.gates.empty() ? 0 : b.gates[0];
                         return ga < gb;
                     });
    return rep;
}

namespace {

constexpr uint32_t kDepthInf = std::numeric_limits<uint32_t>::max();

/** The settle-depth of @p g given its proven value: the smallest k
 *  such that the depth-sorted prefix of its settled known fanins
 *  already forces the value with every other fanin X. Monotonicity
 *  of the cell functions makes the optimal sufficient set a prefix.
 *  Returns kDepthInf while some needed fanin has no settle bound
 *  yet. */
uint32_t
settleCandidate(const Netlist &nl, GateId g,
                const std::vector<V4> &value,
                const std::vector<uint32_t> &depth)
{
    const Gate &gt = nl.gate(g);
    bool seq = isSequential(gt.kind);
    struct Fin {
        uint32_t depth;
        unsigned pin;
    };
    std::vector<Fin> known;
    for (unsigned i = 0; i < gt.nin; ++i) {
        GateId f = gt.in[i];
        if (f < nl.numGates() && value[f] != V4::X &&
            depth[f] != kDepthInf)
            known.push_back({depth[f], i});
    }
    std::sort(known.begin(), known.end(),
              [](const Fin &a, const Fin &b) {
                  return a.depth != b.depth ? a.depth < b.depth
                                            : a.pin < b.pin;
              });
    V4 ins[4] = {V4::X, V4::X, V4::X, V4::X};
    for (size_t k = 0; k <= known.size(); ++k) {
        V4 out;
        if (seq) {
            // q = X: the proof must be independent of the flop's own
            // previous state, exactly like the value fixpoint's first
            // assignment (which runs with q still at X).
            bool held = false;
            out = evalSeqCell(gt.kind, V4::X, ins, held);
        } else {
            out = evalCell(gt.kind, ins);
        }
        if (out == value[g])
            return (seq ? 1 : 0) + (k ? known[k - 1].depth : 0);
        if (k == known.size())
            break;
        ins[known[k].pin] = value[gt.in[known[k].pin]];
    }
    return kDepthInf;
}

} // namespace

ConstAnalysis
analyzeConstants(const Netlist &nl, const ConstAnalysisOptions &opts)
{
    const uint32_t n = uint32_t(nl.numGates());
    Adjacency adj(nl);

    std::vector<uint8_t> hookDriven(n, 0);
    for (const BehavioralHook &h : nl.hooks())
        for (GateId g : h.outputs)
            if (g < n)
                hookDriven[g] = 1;

    ConstAnalysis a;
    a.value.assign(n, V4::X);
    a.settleDepth.assign(n, kDepthInf);
    a.pruneMask.assign(n, 0);

    // --- Seeds -------------------------------------------------------
    std::vector<uint8_t> seed(n, 0);
    auto addSeed = [&](GateId g, V4 v) {
        if (g >= n || v == V4::X || hookDriven[g])
            return;
        a.value[g] = v;
        seed[g] = 1;
    };
    for (uint32_t g = 0; g < n; ++g) {
        CellKind k = nl.gate(g).kind;
        if (k == CellKind::Const0)
            addSeed(g, V4::Zero);
        else if (k == CellKind::Const1)
            addSeed(g, V4::One);
    }
    // Port bits pinned to one value in *every* phase of the schedule
    // are constants of every scenario-obeying execution.
    const scenario::Scenario &scn = opts.scenario;
    size_t phases =
        scn.portSchedule.empty() ? 1 : scn.portSchedule.size();
    for (size_t bit = 0; bit < opts.portBits.size() && bit < 16;
         ++bit) {
        GateId g = opts.portBits[bit];
        if (g == kNoGate)
            continue;
        V4 v = scn.patternAt(0).word().bit(unsigned(bit));
        for (size_t p = 1; p < phases && v != V4::X; ++p)
            if (scn.patternAt(p).word().bit(unsigned(bit)) != v)
                v = V4::X;
        addSeed(g, v);
    }
    for (const auto &dc : opts.drivenConstants)
        addSeed(dc.first, dc.second);

    // --- Value fixpoint ----------------------------------------------
    // Monotone worklist over {X} < {0,1}: recompute a gate from its
    // fanins with the simulator's own cell semantics; a gate that
    // gains a proven value wakes its consumers. Seeds never
    // recompute (inputs have no fanins; Consts are already exact).
    std::vector<uint8_t> queued(n, 0);
    std::vector<GateId> work;
    auto wake = [&](GateId g) {
        const Gate &gt = nl.gate(g);
        if (seed[g] || gt.kind == CellKind::Input || !gt.nin)
            return;
        if (!queued[g]) {
            queued[g] = 1;
            work.push_back(g);
        }
    };
    for (uint32_t g = 0; g < n; ++g)
        if (a.value[g] != V4::X)
            for (uint32_t c = adj.consumerOffset[g];
                 c < adj.consumerOffset[g + 1]; ++c)
                wake(adj.consumer[c]);
    // Also visit every fanin-complete gate once: cells with constant
    // output under all-X inputs (none today, but the lattice does
    // not assume it) and unfinalized test netlists stay covered.
    for (uint32_t g = 0; g < n; ++g)
        wake(g);
    while (!work.empty()) {
        GateId g = work.back();
        work.pop_back();
        queued[g] = 0;
        if (a.value[g] != V4::X)
            continue; // already proven; monotone, nothing to gain
        const Gate &gt = nl.gate(g);
        V4 ins[4] = {V4::X, V4::X, V4::X, V4::X};
        bool wired = true;
        for (unsigned i = 0; i < gt.nin; ++i) {
            GateId f = gt.in[i];
            if (f >= n) {
                wired = false;
                break;
            }
            ins[i] = a.value[f];
        }
        if (!wired)
            continue;
        V4 out;
        if (isSequential(gt.kind)) {
            bool held = false;
            out = evalSeqCell(gt.kind, a.value[g], ins, held);
        } else {
            out = evalCell(gt.kind, ins);
        }
        if (out == V4::X || out == a.value[g])
            continue;
        a.value[g] = out;
        for (uint32_t c = adj.consumerOffset[g];
             c < adj.consumerOffset[g + 1]; ++c)
            wake(adj.consumer[c]);
    }

    // --- Settle depths -----------------------------------------------
    // depth[g] bounds the clock edges after the first post-reset
    // cycle before g provably holds its constant: 0 for cones the
    // first combinational sweep settles, +1 per sequential stage.
    // Depths only decrease, so the worklist terminates.
    for (uint32_t g = 0; g < n; ++g)
        if (seed[g])
            a.settleDepth[g] = 0;
    for (uint32_t g = 0; g < n; ++g)
        if (a.value[g] != V4::X && !seed[g]) {
            queued[g] = 1;
            work.push_back(g);
        }
    while (!work.empty()) {
        GateId g = work.back();
        work.pop_back();
        queued[g] = 0;
        if (seed[g])
            continue;
        uint32_t cand = settleCandidate(nl, g, a.value, a.settleDepth);
        if (cand >= a.settleDepth[g])
            continue;
        a.settleDepth[g] = cand;
        for (uint32_t c = adj.consumerOffset[g];
             c < adj.consumerOffset[g + 1]; ++c) {
            GateId s = adj.consumer[c];
            if (a.value[s] != V4::X && !seed[s] && !queued[s]) {
                queued[s] = 1;
                work.push_back(s);
            }
        }
    }

    // --- Prune mask + energy roll-up ---------------------------------
    for (uint32_t g = 0; g < n; ++g) {
        if (a.value[g] == V4::X)
            continue;
        ++a.provenConst;
        bool seq = isSequential(nl.gate(g).kind);
        a.provenSeq += seq;
        if (seq || hookDriven[g] || a.settleDepth[g] == kDepthInf)
            continue; // reported, never pruned
        a.pruneMask[g] = 1;
        ++a.prunable;
        a.maxPruneDepth = std::max(a.maxPruneDepth, a.settleDepth[g]);
    }
    if (nl.finalized()) {
        for (uint32_t g = 0; g < n; ++g) {
            double e = nl.maxEnergyJ(g);
            bool quiescent =
                a.value[g] != V4::X && a.settleDepth[g] != kDepthInf;
            if (a.pruneMask[g])
                a.quiescentEnergyJ += e;
            if (!quiescent)
                a.switchingBoundJ += e;
        }
        a.switchingBoundJ += nl.clockEnergyPerCycleJ();
    }
    return a;
}

std::vector<QuiescentCone>
quiescentCones(const Netlist &nl, const ConstAnalysis &a)
{
    std::map<std::string, QuiescentCone> rows;
    const uint32_t n = uint32_t(nl.numGates());
    for (uint32_t g = 0; g < n; ++g) {
        ModuleId top = nl.topLevelModuleOf(nl.gate(g).module);
        QuiescentCone &row = rows[nl.moduleName(top)];
        ++row.gates;
        if (g < a.value.size() && a.value[g] != V4::X)
            ++row.constGates;
        if (g < a.pruneMask.size() && a.pruneMask[g]) {
            ++row.pruned;
            if (nl.finalized())
                row.quiescentEnergyJ += nl.maxEnergyJ(g);
        }
    }
    std::vector<QuiescentCone> out;
    out.reserve(rows.size());
    for (auto &kv : rows) {
        kv.second.module = kv.first;
        out.push_back(std::move(kv.second));
    }
    return out;
}

} // namespace lint
} // namespace ulpeak
