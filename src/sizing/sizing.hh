/**
 * @file
 * System-sizing models for energy-harvesting / battery-powered ULP
 * systems (Chapter 1, Figure 1.3; evaluation Tables 5.1 / 5.2).
 *
 * Type 1 systems are powered directly by a harvester sized by peak
 * power; Type 2 charge a battery from a harvester sized by peak
 * (average) energy; Type 3 are battery-only, where peak power sets
 * the effective capacity and peak energy the required capacity.
 */

#ifndef ULPEAK_SIZING_SIZING_HH
#define ULPEAK_SIZING_SIZING_HH

#include <string>
#include <vector>

namespace ulpeak {
namespace sizing {

/// @name Data tables (Tables 1.1 and 1.2)
/// @{
struct BatteryType {
    std::string name;
    double specificEnergyJPerG; ///< J/g
    double energyDensityMJPerL; ///< MJ/L
};
struct HarvesterType {
    std::string name;
    double powerDensityWPerCm2; ///< W/cm^2
};

const std::vector<BatteryType> &batteryTypes();
const std::vector<HarvesterType> &harvesterTypes();
/// @}

/// @name Component sizing (Figure 1.3)
/// @{
/** Type 1: harvester area so peak load is covered. [cm^2] */
double harvesterAreaCm2(double peak_power_w,
                        const HarvesterType &harvester);
/** Type 2/3: battery volume for a required total energy. [L] */
double batteryVolumeL(double energy_j, const BatteryType &battery);
/** Battery mass for a required total energy. [g] */
double batteryMassG(double energy_j, const BatteryType &battery);
/// @}

/// @name Requirement-reduction accounting (Tables 5.1 / 5.2)
/// @{

/**
 * Percentage reduction in harvester area when the processor's peak
 * power requirement drops from @p baseline_w to @p xbased_w and the
 * processor contributes @p processor_fraction of system peak power.
 * Harvester area is proportional to system peak power, so:
 *   reduction% = fraction * (1 - xbased/baseline) * 100.
 */
double harvesterAreaReductionPct(double baseline_w, double xbased_w,
                                 double processor_fraction);

/** Same accounting for battery volume vs the peak-energy (NPE)
 *  requirement. */
double batteryVolumeReductionPct(double baseline_npe, double xbased_npe,
                                 double processor_fraction);
/// @}

/// @name Suite-level supply sizing (batch driver)
/// @{

/**
 * Component sizes that cover the worst-case application of a whole
 * suite. The batch driver (peak::analyzeBatch / the `ulpeak` CLI)
 * feeds the suite maxima here: a supply sized for the largest
 * guaranteed peak power / peak energy across the suite is, by the
 * paper's argument, sufficient for every application and every input.
 */
struct SuiteSupply {
    double peakPowerW = 0.0;  ///< suite max peak power (Type 1 input)
    double peakEnergyJ = 0.0; ///< suite max peak energy (Type 2/3)

    struct HarvesterFit {
        std::string name;
        double areaCm2 = 0.0; ///< harvesterAreaCm2(peakPowerW, type)
    };
    struct BatteryFit {
        std::string name;
        double volumeL = 0.0; ///< batteryVolumeL(peakEnergyJ, type)
        double massG = 0.0;   ///< batteryMassG(peakEnergyJ, type)
    };
    std::vector<HarvesterFit> harvesters; ///< one per harvesterTypes()
    std::vector<BatteryFit> batteries;    ///< one per batteryTypes()
};

/** Size every harvester and battery type for the given suite maxima. */
SuiteSupply sizeSuiteSupply(double peak_power_w, double peak_energy_j);
/// @}

/// @name Envelope-driven supply + decap sizing (peak::Envelope)
/// @{

/**
 * Decoupling capacitance that can deliver @p window_energy_j while
 * the rail droops from @p vdd to @p vmin:
 *   C = 2 E / (vdd^2 - vmin^2). [F]
 * This is the decap role of the windowed peak-energy curves: the
 * supply covers the sustained rate, the decap covers the worst
 * W-cycle burst above it.
 *
 * Throws std::invalid_argument when vmin >= vdd: no finite capacitor
 * can deliver energy with zero (or negative) discharge headroom.
 * That case used to return 0.0 F -- a silently wrong "no decap
 * needed" answer, and exactly what a low-voltage operating mode near
 * kDecapVminRatio * vdd would feed in (`ulpeak --modes` raises a
 * finding for such modes before any sizing call gets here).
 */
double decapFarads(double window_energy_j, double vdd, double vmin);

/** Allowed rail droop of the decap model: vmin = kDecapVminRatio *
 *  vdd (5% droop). */
constexpr double kDecapVminRatio = 0.95;

/**
 * Supply sizes driven by the per-cycle envelope profile instead of
 * the point peak: the harvester covers the *sustained* rate (the
 * worst longest-window average power -- strictly tighter than the
 * single-cycle peak whenever the envelope is not flat), and one decap
 * per window covers that window's worst energy burst. This is the
 * anti-guardband sizing the paper argues for.
 */
struct EnvelopeSupply {
    double peakPowerW = 0.0;      ///< envelope max (reference point)
    double sustainedPowerW = 0.0; ///< worst longest-window avg power
    std::vector<unsigned> windows;
    std::vector<double> peakWindowEnergyJ; ///< per window
    std::vector<double> decapF;            ///< per window, 5% droop
    std::vector<SuiteSupply::HarvesterFit>
        harvesters; ///< sized by sustainedPowerW
};

/**
 * Size harvesters and decaps from an envelope's windowed peak-energy
 * curve maxima. @p windows and @p peak_window_energy_j are parallel
 * (peak::Envelope::windows / peakWindowEnergyJ); @p tclk_s converts
 * the longest window's energy into the sustained power requirement;
 * @p vdd is the rail the decaps ride on.
 */
EnvelopeSupply
sizeEnvelopeSupply(const std::vector<unsigned> &windows,
                   const std::vector<double> &peak_window_energy_j,
                   double peak_power_w, double tclk_s, double vdd);
/// @}

} // namespace sizing
} // namespace ulpeak

#endif // ULPEAK_SIZING_SIZING_HH
