/**
 * @file
 * Batch multi-program peak analysis: the suite-level counterpart of
 * peak::analyze. A deployment flow rarely asks "what does *this*
 * application require?" in isolation -- it sizes one supply for a
 * whole suite of applications, so the interesting number is the
 * maximum guaranteed peak power / peak energy across the suite.
 * analyzeBatch() runs peak::analyze over every program of a suite,
 * sharded across a program-level worker pool, and aggregates the
 * per-program requirements into that supply-sizing number (routed
 * through sizing::sizeSuiteSupply).
 *
 * Two levels of parallelism compose: BatchOptions::jobs shards whole
 * programs across workers (each worker owns a private msp::System
 * elaborated from the same CellLibrary), while
 * Options::numThreads parallelizes the execution-tree exploration
 * *inside* one analysis. Both are scheduling-independent, so every
 * (jobs, numThreads) combination produces bit-identical per-program
 * numbers -- tests/test_batch.cc locksteps jobs=1 against jobs=N.
 *
 * A suite can be analyzed under several deployment scenarios at
 * once (BatchOptions::scenarios): analyzeBatch then runs the full
 * scenario x program matrix -- BatchReport::programs holds one
 * ProgramResult per (scenario, program) pair in scenario-major
 * order, and BatchReport::scenarios carries per-scenario suite
 * aggregates (maxima, envelope, supply sizing), so one invocation
 * reports how much each added constraint tightens the suite's
 * requirements. The top-level aggregates always describe the first
 * scenario, which keeps single-scenario callers unchanged.
 *
 * Results are cached on disk (BatchOptions::cacheDir) keyed by the
 * FNV-1a hash of (cache format version, cell library contents, image
 * contents, result-affecting analysis options, scenario contents).
 * Options that provably cannot change the numbers -- numThreads
 * (scheduling-independent exploration), evalMode (bit-identical
 * kernels), snapshotMode (bit-identical fork representations), and
 * the recordActiveSets/recordModuleTrace trace flags (never cached)
 * -- are excluded from the key, so re-runs under a different thread
 * count or kernel still hit. recordEnvelope and envelopeWindows *do*
 * participate: they change what a cached entry must contain; the
 * scenario participates by content hash because it changes every
 * number. Entries carry a format-version header (v2 added the
 * envelope fields, v3 the scenario-aware key, v4 operating-mode
 * schedules in the scenario hash), so stale entries from an older
 * binary are treated as misses instead of deserializing into
 * garbage reports. Cached doubles (and envelope floats)
 * round-trip through their bit patterns, so a warm run reproduces
 * the cold run bit for bit.
 *
 * Quickstart:
 * @code
 *   std::vector<peak::BatchProgram> suite;
 *   for (const auto &b : bench430::allBenchmarks())
 *       suite.push_back({b.name, b.assembleImage()});
 *   peak::BatchOptions opts;
 *   opts.jobs = 4;
 *   opts.cacheDir = ".ulpeak-cache";
 *   peak::BatchReport rep =
 *       peak::analyzeBatch(CellLibrary::tsmc65Like(), suite, opts);
 *   // rep.maxPeakPowerW is the suite's supply-sizing number;
 *   // rep.supply has per-harvester/battery component sizes.
 * @endcode
 */

#ifndef ULPEAK_PEAK_BATCH_HH
#define ULPEAK_PEAK_BATCH_HH

#include <string>
#include <vector>

#include "peak/peak_analysis.hh"
#include "sizing/sizing.hh"

namespace ulpeak {
namespace peak {

/** One suite entry: a named, already-assembled application image. */
struct BatchProgram {
    std::string name;
    isa::Image image;
};

struct BatchOptions {
    /** Per-program analysis options (shared by the whole suite). */
    Options analysis;
    /**
     * Deployment scenarios to sweep the suite across. Empty (the
     * default) analyzes under analysis.scenario alone; otherwise
     * every program is analyzed once per listed scenario
     * (analysis.scenario is ignored) and the report carries the
     * full matrix plus per-scenario aggregates.
     */
    std::vector<scenario::Scenario> scenarios;
    /** Program-level workers (<= 1: serial on the calling thread).
     *  Orthogonal to analysis.numThreads; see the file comment. */
    unsigned jobs = 1;
    /** Disk cache directory; "" disables caching. Created on demand;
     *  entries are one small text file per (image, options, library)
     *  key, written atomically (tmp + rename), so concurrent batch
     *  runs may safely share a directory. */
    std::string cacheDir;
    /** Stop claiming further programs after the first failure.
     *  Unclaimed programs are reported as skipped (ok = false). The
     *  default analyzes every program and reports all failures. */
    bool failFast = false;
};

/** Per-program results: the scalars of peak::Report (the bulky tree
 *  members are dropped, which is the point of a cached suite), plus
 *  the per-cycle envelope when Options::recordEnvelope asked for it
 *  (the envelope is the profile being sized against, so the batch
 *  layer carries and caches it). */
struct ProgramResult {
    std::string name;
    /** Scenario this row was analyzed under (its Scenario::name). */
    std::string scenario;
    bool ok = false;
    bool cached = false; ///< served from the disk cache
    std::string error;   ///< analysis error, or the skip reason

    double peakPowerW = 0.0;
    double peakEnergyJ = 0.0;
    double npeJPerCycle = 0.0;
    uint64_t maxPathCycles = 0;

    uint64_t totalCycles = 0;
    uint32_t pathsExplored = 0;
    uint32_t dedupMerges = 0;
    /// @name Run-provenance statistics (like wallSeconds: zero on
    /// cache hits, scheduling-dependent, excluded from determinism
    /// comparisons and from the cache)
    /// @{
    uint32_t steals = 0;
    uint64_t snapshotBytesCopied = 0;
    uint64_t snapshotBytesFull = 0;
    std::vector<uint64_t> perWorkerCycles;
    /// Packed-frontier counters (zero unless packedExplore)
    uint64_t packedBatches = 0;
    uint64_t packedSweeps = 0;
    uint64_t packedLaneCycles = 0;
    /// @}

    /** Peak power envelope + windowed peak-energy curves, when
     *  Options::recordEnvelope. The cache stores only the power
     *  trace; window curves are rebuilt deterministically on load. */
    Envelope envelope;

    double wallSeconds = 0.0; ///< this run's wall time (cache hits
                              ///< included; near zero when warm)
};

/** Per-scenario suite aggregates (one entry per analyzed scenario,
 *  in BatchOptions::scenarios order). */
struct ScenarioSummary {
    std::string scenario;
    std::string summary; ///< Scenario::summary() for reports
    bool ok = false;     ///< every program of this scenario analyzed

    double maxPeakPowerW = 0.0;
    std::string maxPeakPowerProgram;
    double maxPeakEnergyJ = 0.0;
    std::string maxPeakEnergyProgram;
    double maxNpeJPerCycle = 0.0;
    std::string maxNpeProgram;

    sizing::SuiteSupply supply;
    Envelope suiteEnvelope;
    sizing::EnvelopeSupply envelopeSupply;
};

/** Suite-level report: per-(scenario, program) results in
 *  scenario-major input order plus the aggregates a deployment flow
 *  consumes. */
struct BatchReport {
    bool ok = false; ///< every program analyzed successfully
    /** One row per (scenario, program), scenario-major: with S
     *  scenarios and P programs, row s*P + p is program p under
     *  scenario s. Single-scenario runs look exactly like before. */
    std::vector<ProgramResult> programs;
    /** Per-scenario aggregates; size 1 when no scenario sweep was
     *  requested. scenarios[0] equals the top-level aggregate
     *  fields below. */
    std::vector<ScenarioSummary> scenarios;

    /// @name Suite aggregates (over successful programs of the
    /// *first* scenario -- see scenarios[] for the rest)
    /// @{
    double maxPeakPowerW = 0.0; ///< the paper's supply-sizing number
    std::string maxPeakPowerProgram;
    double maxPeakEnergyJ = 0.0;
    std::string maxPeakEnergyProgram;
    double maxNpeJPerCycle = 0.0;
    std::string maxNpeProgram;
    /// @}

    /** Harvester/battery sizes covering the suite maxima
     *  (sizing::sizeSuiteSupply; empty when no program succeeded). */
    sizing::SuiteSupply supply;

    /** Elementwise max-composition of the per-program envelopes: the
     *  per-cycle profile a shared supply must cover for every program
     *  and every input (present only when envelopes were recorded). */
    Envelope suiteEnvelope;
    /** Envelope-driven harvester + decap sizes
     *  (sizing::sizeEnvelopeSupply over suiteEnvelope). */
    sizing::EnvelopeSupply envelopeSupply;

    unsigned cacheHits = 0;
    unsigned cacheMisses = 0;
    double wallSeconds = 0.0; ///< whole-suite wall time
};

/**
 * Cache key for one (library, image, options) combination -- exposed
 * so tests can pin the exclusion rules (numThreads/evalMode/record*
 * do not participate; see the file comment).
 */
uint64_t cacheKey(const CellLibrary &lib, const isa::Image &image,
                  const Options &opts);

/**
 * Analyze every program of @p programs against a system elaborated
 * from @p lib. Per-program failures (including thrown exceptions) are
 * captured in the corresponding ProgramResult; the call itself only
 * throws on environmental errors (e.g. an unwritable cache dir).
 */
BatchReport analyzeBatch(const CellLibrary &lib,
                         const std::vector<BatchProgram> &programs,
                         const BatchOptions &opts);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_BATCH_HH
