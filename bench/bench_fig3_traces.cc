/**
 * @file
 * Experiment E4 -- Figure 3.3: per-cycle X-based peak power traces
 * for every benchmark. The reproduced claim: per-cycle peak power
 * varies strongly across an application's compute phases, so peak
 * energy is far below peak-power x runtime.
 */

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"
#include "power/analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    printHeader("Fig 3.3: per-cycle peak power traces (X-based)");
    std::printf("%-10s %10s %10s %10s %14s\n", "benchmark", "peak[mW]",
                "mean[mW]", "min[mW]", "peakE/flatE");

    for (const auto &b : bench430::allBenchmarks()) {
        peak::Options opts;
        peak::Report r = peak::analyze(sys, b.assembleImage(), opts);
        if (!r.ok) {
            std::printf("%-10s ANALYSIS FAILED: %s\n", b.name.c_str(),
                        r.error.c_str());
            continue;
        }
        double minW = 1e9, sum = 0.0;
        for (float w : r.flatTraceW) {
            minW = std::min(minW, double(w));
            sum += w;
        }
        double mean = sum / double(r.flatTraceW.size());
        // Ratio of the true peak-energy bound to the naive
        // peak-power x runtime product (the paper's Section 3.3
        // argument: the naive product grossly overestimates).
        double naive =
            r.peakPowerW * (1.0 / opts.freqHz) * double(r.maxPathCycles);
        std::printf("%-10s %10.3f %10.3f %10.3f %13.2f%%\n",
                    b.name.c_str(), r.peakPowerW * 1e3, mean * 1e3,
                    minW * 1e3, 100.0 * r.peakEnergyJ / naive);
        power::writePowerCsv(outDir() + "fig3_3_" + b.name + ".csv",
                             r.flatTraceW);
    }
    std::printf("traces -> %sfig3_3_<benchmark>.csv\n", outDir().c_str());
    return 0;
}
