#include "logic/v4.hh"

namespace ulpeak {

// The hot ops (v4And/v4Or/v4Xor/v4Not/v4Mux) are constexpr in v4.hh;
// only the cold string/character helpers stay out of line.

char
v4Char(V4 v)
{
    switch (v) {
      case V4::Zero: return '0';
      case V4::One: return '1';
      default: return 'x';
    }
}

V4
v4FromChar(char c)
{
    if (c == '0')
        return V4::Zero;
    if (c == '1')
        return V4::One;
    return V4::X;
}

std::string
Word16::toString() const
{
    std::string s;
    s.reserve(16);
    for (int i = 15; i >= 0; --i)
        s.push_back(v4Char(bit(unsigned(i))));
    return s;
}

} // namespace ulpeak
