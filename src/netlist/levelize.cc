/**
 * @file
 * Topological levelization of a netlist.
 *
 * The cycle-based simulator evaluates every combinational gate exactly
 * once per cycle, in an order where each gate's fanins (and any
 * behavioral hook feeding it) have already been evaluated. Sequential
 * gate outputs and primary inputs are the sources of the order;
 * combinational loops are construction errors and are reported with a
 * witness gate.
 */

#include <queue>
#include <stdexcept>

#include "netlist/netlist.hh"

namespace ulpeak {

/** Helper with friend access that computes the evaluation order. */
class Levelizer {
  public:
    static void
    run(Netlist &nl)
    {
        const size_t n = nl.gates_.size();
        const size_t h = nl.hooks_.size();

        // Node ids: [0, n) are gates, [n, n + h) are hooks.
        std::vector<uint32_t> indeg(n + h, 0);
        std::vector<std::vector<uint32_t>> succ(n + h);

        // Map each hook-output Input gate to its hook node.
        std::vector<uint32_t> hookOf(n, UINT32_MAX);
        for (size_t i = 0; i < h; ++i)
            for (GateId g : nl.hooks_[i].outputs)
                hookOf[g] = uint32_t(i);

        nl.fanoutCount_.assign(n, 0);

        auto addEdge = [&](uint32_t from, uint32_t to) {
            succ[from].push_back(to);
            ++indeg[to];
        };

        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            for (unsigned i = 0; i < gate.nin; ++i) {
                GateId src = gate.in[i];
                if (src == kNoGate)
                    throw std::logic_error(
                        "unconnected fanin at gate " + std::to_string(g));
                ++nl.fanoutCount_[src];
                // Sequential gates consume their fanins at the clock
                // edge; they are not part of the combinational order.
                if (isSequential(gate.kind))
                    continue;
                addEdge(src, g);
            }
            // A hook-driven input must wait for its hook.
            if (hookOf[g] != UINT32_MAX)
                addEdge(uint32_t(n + hookOf[g]), g);
        }
        for (size_t i = 0; i < h; ++i)
            for (GateId dep : nl.hooks_[i].depends)
                addEdge(dep, uint32_t(n + i));

        // Kahn's algorithm. Sequential outputs, constants and plain
        // primary inputs start ready; they are emitted in the order so
        // the simulator has a complete per-cycle visit sequence.
        std::queue<uint32_t> ready;
        for (uint32_t v = 0; v < n + h; ++v)
            if (indeg[v] == 0)
                ready.push(v);

        nl.order_.clear();
        nl.order_.reserve(n + h);
        size_t emitted = 0;
        while (!ready.empty()) {
            uint32_t v = ready.front();
            ready.pop();
            ++emitted;
            EvalItem item;
            if (v < n) {
                item.type = EvalItem::Type::Gate;
                item.index = v;
            } else {
                item.type = EvalItem::Type::Hook;
                item.index = uint32_t(v - n);
            }
            nl.order_.push_back(item);
            for (uint32_t s : succ[v])
                if (--indeg[s] == 0)
                    ready.push(s);
        }

        if (emitted != n + h) {
            for (uint32_t v = 0; v < n; ++v) {
                if (indeg[v] != 0) {
                    throw std::logic_error(
                        "combinational loop through gate " +
                        std::to_string(v) + " (" +
                        cellName(nl.gates_[v].kind) + ")");
                }
            }
            throw std::logic_error("combinational loop through a hook");
        }

        nl.seqGates_.clear();
        for (GateId g = 0; g < n; ++g)
            if (isSequential(nl.gates_[g].kind))
                nl.seqGates_.push_back(g);

        // Pre-compute per-gate transition energies and static totals.
        const CellLibrary &lib = *nl.lib_;
        nl.riseE_.resize(n);
        nl.fallE_.resize(n);
        nl.totalLeakage_ = 0.0;
        nl.clockEnergy_ = 0.0;
        for (GateId g = 0; g < n; ++g) {
            CellKind k = nl.gates_[g].kind;
            unsigned fo = nl.fanoutCount_[g];
            nl.riseE_[g] = lib.transitionEnergyJ(k, true, fo);
            nl.fallE_[g] = lib.transitionEnergyJ(k, false, fo);
            nl.totalLeakage_ += lib.params(k).leakageW;
            nl.clockEnergy_ += lib.params(k).clkPinEnergyJ;
        }
    }
};

void
Netlist::finalize()
{
    if (finalized_)
        return;
    Levelizer::run(*this);
    finalized_ = true;
}

} // namespace ulpeak
