#include "isa/encoding.hh"

#include <sstream>
#include <stdexcept>

namespace ulpeak {
namespace isa {

bool
isFormatI(Op op)
{
    return op >= Op::Mov && op <= Op::And;
}

bool
isFormatII(Op op)
{
    return op >= Op::Rrc && op <= Op::Reti;
}

bool
isJump(Op op)
{
    return op >= Op::Jne && op <= Op::Jmp;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Addc: return "addc";
      case Op::Subc: return "subc";
      case Op::Sub: return "sub";
      case Op::Cmp: return "cmp";
      case Op::Bit: return "bit";
      case Op::Bic: return "bic";
      case Op::Bis: return "bis";
      case Op::Xor: return "xor";
      case Op::And: return "and";
      case Op::Rrc: return "rrc";
      case Op::Swpb: return "swpb";
      case Op::Rra: return "rra";
      case Op::Sxt: return "sxt";
      case Op::Push: return "push";
      case Op::Call: return "call";
      case Op::Reti: return "reti";
      case Op::Jne: return "jne";
      case Op::Jeq: return "jeq";
      case Op::Jnc: return "jnc";
      case Op::Jc: return "jc";
      case Op::Jn: return "jn";
      case Op::Jge: return "jge";
      case Op::Jl: return "jl";
      case Op::Jmp: return "jmp";
      default: return "invalid";
    }
}

bool
Operand::needsExtWord() const
{
    switch (mode) {
      case Mode::Indexed:
      case Mode::Immediate:
      case Mode::Absolute:
      case Mode::Symbolic:
        return true;
      default:
        return false;
    }
}

bool
Operand::readsMemory() const
{
    switch (mode) {
      case Mode::Indexed:
      case Mode::Indirect:
      case Mode::IndirectInc:
      case Mode::Absolute:
      case Mode::Symbolic:
        return true;
      default:
        return false;
    }
}

std::string
Instr::toString() const
{
    auto fmtOperand = [](const Operand &o) {
        std::ostringstream os;
        auto hex = [](int32_t v) {
            std::ostringstream h;
            h << "0x" << std::hex << (uint32_t(v) & 0xffff);
            return h.str();
        };
        switch (o.mode) {
          case Mode::Reg:
            os << "r" << int(o.reg);
            break;
          case Mode::Indexed:
            os << hex(o.imm) << "(r" << int(o.reg) << ")";
            break;
          case Mode::Indirect:
            os << "@r" << int(o.reg);
            break;
          case Mode::IndirectInc:
            os << "@r" << int(o.reg) << "+";
            break;
          case Mode::Immediate:
          case Mode::Const:
            os << "#" << o.imm;
            break;
          case Mode::Absolute:
            os << "&" << hex(o.imm);
            break;
          case Mode::Symbolic:
            os << hex(o.imm) << "(pc)";
            break;
        }
        return os.str();
    };

    std::ostringstream os;
    os << opName(op);
    if (isFormatI(op)) {
        os << " " << fmtOperand(src) << ", " << fmtOperand(dst);
    } else if (isFormatII(op) && op != Op::Reti) {
        os << " " << fmtOperand(src);
    } else if (isJump(op)) {
        os << " " << (jumpOffsetWords >= 0 ? "+" : "")
           << int(jumpOffsetWords) * 2 + 2;
    }
    return os.str();
}

namespace {

/** Decode an (As, reg) pair into a resolved source operand. */
Operand
decodeSrc(unsigned as, unsigned reg, uint16_t ext, bool &usedExt)
{
    Operand o;
    o.reg = uint8_t(reg);
    usedExt = false;
    if (reg == kCg) {
        o.mode = Mode::Const;
        static const int32_t cg3[4] = {0, 1, 2, -1};
        o.imm = cg3[as];
        return o;
    }
    if (reg == kSr && as >= 2) {
        o.mode = Mode::Const;
        o.imm = as == 2 ? 4 : 8;
        return o;
    }
    switch (as) {
      case 0:
        o.mode = Mode::Reg;
        break;
      case 1:
        usedExt = true;
        if (reg == kSr) {
            o.mode = Mode::Absolute;
            o.imm = ext;
        } else if (reg == kPc) {
            o.mode = Mode::Symbolic;
            o.imm = int16_t(ext);
        } else {
            o.mode = Mode::Indexed;
            o.imm = int16_t(ext);
        }
        break;
      case 2:
        o.mode = Mode::Indirect;
        break;
      case 3:
        if (reg == kPc) {
            o.mode = Mode::Immediate;
            o.imm = ext;
            usedExt = true;
        } else {
            o.mode = Mode::IndirectInc;
        }
        break;
    }
    return o;
}

/** Decode an (Ad, reg) pair into a destination operand. */
Operand
decodeDst(unsigned ad, unsigned reg, uint16_t ext, bool &usedExt)
{
    Operand o;
    o.reg = uint8_t(reg);
    usedExt = false;
    if (ad == 0) {
        o.mode = Mode::Reg;
        return o;
    }
    usedExt = true;
    if (reg == kSr) {
        o.mode = Mode::Absolute;
        o.imm = ext;
    } else if (reg == kPc) {
        o.mode = Mode::Symbolic;
        o.imm = int16_t(ext);
    } else {
        o.mode = Mode::Indexed;
        o.imm = int16_t(ext);
    }
    return o;
}

} // namespace

Decoded
decode(uint16_t w0, uint16_t w1, uint16_t w2)
{
    Decoded d;
    unsigned top = (w0 >> 12) & 0xf;

    if (top >= 0x4) {
        // Format I. DADD (0xA) and byte mode are unsupported.
        static const Op ops[12] = {Op::Mov, Op::Add, Op::Addc, Op::Subc,
                                   Op::Sub, Op::Cmp, Op::Invalid,
                                   Op::Bit, Op::Bic, Op::Bis, Op::Xor,
                                   Op::And};
        Op op = ops[top - 4];
        bool byteMode = (w0 >> 6) & 1;
        if (op == Op::Invalid || byteMode)
            return d;
        unsigned sreg = (w0 >> 8) & 0xf;
        unsigned ad = (w0 >> 7) & 1;
        unsigned as = (w0 >> 4) & 3;
        unsigned dreg = w0 & 0xf;

        bool srcExt = false, dstExt = false;
        d.instr.op = op;
        d.instr.src = decodeSrc(as, sreg, w1, srcExt);
        d.instr.dst = decodeDst(ad, dreg, srcExt ? w2 : w1, dstExt);
        d.words = 1 + srcExt + dstExt;
        d.valid = true;
        return d;
    }

    if ((w0 >> 13) == 1) {
        // Format III: 001c ccoo oooo oooo
        unsigned cond = (w0 >> 10) & 7;
        static const Op ops[8] = {Op::Jne, Op::Jeq, Op::Jnc, Op::Jc,
                                  Op::Jn, Op::Jge, Op::Jl, Op::Jmp};
        d.instr.op = ops[cond];
        int16_t off = int16_t(w0 & 0x3ff);
        if (off & 0x200)
            off |= int16_t(0xfc00); // sign extend 10 bits
        d.instr.jumpOffsetWords = off;
        d.words = 1;
        d.valid = true;
        return d;
    }

    if ((w0 >> 10) == 0x4) {
        // Format II: 0001 00oo o b aa dddd
        unsigned sub = (w0 >> 7) & 7;
        static const Op ops[8] = {Op::Rrc, Op::Swpb, Op::Rra, Op::Sxt,
                                  Op::Push, Op::Call, Op::Reti,
                                  Op::Invalid};
        Op op = ops[sub];
        bool byteMode = (w0 >> 6) & 1;
        if (op == Op::Invalid || byteMode)
            return d;
        d.instr.op = op;
        if (op != Op::Reti) {
            unsigned as = (w0 >> 4) & 3;
            unsigned reg = w0 & 0xf;
            bool srcExt = false;
            d.instr.src = decodeSrc(as, reg, w1, srcExt);
            d.words = 1 + srcExt;
        }
        d.valid = true;
        return d;
    }

    return d;
}

namespace {

/** Pick As/reg bits (and possibly an ext word) for a source operand. */
void
encodeSrc(const Operand &o, unsigned &as, unsigned &reg, bool &ext,
          uint16_t &extWord)
{
    ext = false;
    switch (o.mode) {
      case Mode::Reg:
        as = 0;
        reg = o.reg;
        break;
      case Mode::Indexed:
        as = 1;
        reg = o.reg;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      case Mode::Symbolic:
        as = 1;
        reg = kPc;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      case Mode::Absolute:
        as = 1;
        reg = kSr;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      case Mode::Indirect:
        as = 2;
        reg = o.reg;
        break;
      case Mode::IndirectInc:
        as = 3;
        reg = o.reg;
        break;
      case Mode::Const:
      case Mode::Immediate: {
        // Constant generator for the blessed values, else @PC+.
        int32_t v = o.imm;
        int32_t v16 = int32_t(int16_t(uint16_t(v)));
        if (v16 == 0) { as = 0; reg = kCg; }
        else if (v16 == 1) { as = 1; reg = kCg; }
        else if (v16 == 2) { as = 2; reg = kCg; }
        else if (v16 == -1) { as = 3; reg = kCg; }
        else if (v16 == 4) { as = 2; reg = kSr; }
        else if (v16 == 8) { as = 3; reg = kSr; }
        else {
            as = 3;
            reg = kPc;
            ext = true;
            extWord = uint16_t(v);
        }
        break;
      }
    }
}

void
encodeDst(const Operand &o, unsigned &ad, unsigned &reg, bool &ext,
          uint16_t &extWord)
{
    ext = false;
    switch (o.mode) {
      case Mode::Reg:
        ad = 0;
        reg = o.reg;
        break;
      case Mode::Indexed:
        ad = 1;
        reg = o.reg;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      case Mode::Symbolic:
        ad = 1;
        reg = kPc;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      case Mode::Absolute:
        ad = 1;
        reg = kSr;
        ext = true;
        extWord = uint16_t(o.imm);
        break;
      default:
        throw std::invalid_argument(
            "destination operand must be Reg/Indexed/Absolute/Symbolic");
    }
}

} // namespace

std::vector<uint16_t>
encode(const Instr &instr)
{
    std::vector<uint16_t> words;

    if (isFormatI(instr.op)) {
        static const uint16_t opBits[] = {0x4, 0x5, 0x6, 0x7, 0x8, 0x9,
                                          0xb, 0xc, 0xd, 0xe, 0xf};
        unsigned as = 0, sreg = 0, ad = 0, dreg = 0;
        bool srcExt = false, dstExt = false;
        uint16_t srcWord = 0, dstWord = 0;
        encodeSrc(instr.src, as, sreg, srcExt, srcWord);
        encodeDst(instr.dst, ad, dreg, dstExt, dstWord);
        uint16_t w0 = uint16_t(
            (opBits[size_t(instr.op)] << 12) | (sreg << 8) | (ad << 7) |
            (as << 4) | dreg);
        words.push_back(w0);
        if (srcExt)
            words.push_back(srcWord);
        if (dstExt)
            words.push_back(dstWord);
        return words;
    }

    if (isFormatII(instr.op)) {
        unsigned sub = unsigned(instr.op) - unsigned(Op::Rrc);
        uint16_t w0 = uint16_t(0x1000 | (sub << 7));
        if (instr.op == Op::Reti) {
            words.push_back(w0);
            return words;
        }
        unsigned as = 0, reg = 0;
        bool ext = false;
        uint16_t extWord = 0;
        encodeSrc(instr.src, as, reg, ext, extWord);
        w0 |= uint16_t((as << 4) | reg);
        words.push_back(w0);
        if (ext)
            words.push_back(extWord);
        return words;
    }

    if (isJump(instr.op)) {
        unsigned cond = unsigned(instr.op) - unsigned(Op::Jne);
        int off = instr.jumpOffsetWords;
        if (off < -512 || off > 511)
            throw std::out_of_range("jump offset out of range");
        words.push_back(
            uint16_t(0x2000 | (cond << 10) | (uint16_t(off) & 0x3ff)));
        return words;
    }

    throw std::invalid_argument("cannot encode invalid instruction");
}

MicroPlan
planOf(const Instr &instr)
{
    MicroPlan p;
    if (isJump(instr.op))
        return p;

    const Operand &s = instr.src;
    p.srcExt = s.needsExtWord();
    p.srcRd = s.readsMemory();

    if (isFormatI(instr.op)) {
        const Operand &d = instr.dst;
        p.dstExt = d.needsExtWord();
        bool dstMem = d.mode != Mode::Reg;
        p.dstRd = dstMem && readsDst(instr.op);
        p.dstWr = dstMem && writesDst(instr.op);
        return p;
    }

    // Format II
    switch (instr.op) {
      case Op::Rrc:
      case Op::Rra:
      case Op::Swpb:
      case Op::Sxt:
        if (s.mode != Mode::Reg && s.mode != Mode::Const) {
            p.dstWr = true; // read-modify-write back to the operand
        }
        break;
      case Op::Push:
        p.push = true;
        break;
      case Op::Call:
        p.push = true;
        p.call = true;
        break;
      default:
        break;
    }
    return p;
}

bool
writesDst(Op op)
{
    return isFormatI(op) && op != Op::Cmp && op != Op::Bit;
}

bool
readsDst(Op op)
{
    return isFormatI(op) && op != Op::Mov;
}

bool
setsFlags(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Bic:
      case Op::Bis:
      case Op::Push:
      case Op::Call:
      case Op::Swpb:
        return false;
      default:
        return !isJump(op) && op != Op::Invalid && op != Op::Reti;
    }
}

bool
jumpTaken(Op op, bool c, bool z, bool n, bool v)
{
    switch (op) {
      case Op::Jne: return !z;
      case Op::Jeq: return z;
      case Op::Jnc: return !c;
      case Op::Jc: return c;
      case Op::Jn: return n;
      case Op::Jge: return !(n ^ v);
      case Op::Jl: return n ^ v;
      case Op::Jmp: return true;
      default: return false;
    }
}

} // namespace isa
} // namespace ulpeak
