#include "sim/packed_simulator.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "cell/cell_library.hh"

namespace ulpeak {

namespace {

/** Lane-exact packed mirror of evalCell (cell_library.cc): the same
 *  op composition per kind, over V64 planes instead of one V4. */
V64
packedEvalCell(CellKind k, const V64 *in)
{
    switch (k) {
      case CellKind::Const0:
        return V64::splat(V4::Zero);
      case CellKind::Const1:
        return V64::splat(V4::One);
      case CellKind::Buf:
        return in[0];
      case CellKind::Inv:
        return v64Not(in[0]);
      case CellKind::And2:
        return v64And(in[0], in[1]);
      case CellKind::And3:
        return v64And(v64And(in[0], in[1]), in[2]);
      case CellKind::And4:
        return v64And(v64And(in[0], in[1]), v64And(in[2], in[3]));
      case CellKind::Or2:
        return v64Or(in[0], in[1]);
      case CellKind::Or3:
        return v64Or(v64Or(in[0], in[1]), in[2]);
      case CellKind::Or4:
        return v64Or(v64Or(in[0], in[1]), v64Or(in[2], in[3]));
      case CellKind::Nand2:
        return v64Not(v64And(in[0], in[1]));
      case CellKind::Nand3:
        return v64Not(v64And(v64And(in[0], in[1]), in[2]));
      case CellKind::Nand4:
        return v64Not(
            v64And(v64And(in[0], in[1]), v64And(in[2], in[3])));
      case CellKind::Nor2:
        return v64Not(v64Or(in[0], in[1]));
      case CellKind::Nor3:
        return v64Not(v64Or(v64Or(in[0], in[1]), in[2]));
      case CellKind::Nor4:
        return v64Not(v64Or(v64Or(in[0], in[1]), v64Or(in[2], in[3])));
      case CellKind::Xor2:
        return v64Xor(in[0], in[1]);
      case CellKind::Xnor2:
        return v64Not(v64Xor(in[0], in[1]));
      case CellKind::Mux2:
        return v64Mux(in[2], in[0], in[1]);
      case CellKind::Aoi21:
        return v64Not(v64Or(v64And(in[0], in[1]), in[2]));
      case CellKind::Oai21:
        return v64Not(v64And(v64Or(in[0], in[1]), in[2]));
      case CellKind::Aoi22:
        return v64Not(
            v64Or(v64And(in[0], in[1]), v64And(in[2], in[3])));
      case CellKind::Oai22:
        return v64Not(
            v64And(v64Or(in[0], in[1]), v64Or(in[2], in[3])));
      default:
        assert(false && "packedEvalCell on non-combinational kind");
        return V64::allX();
    }
}

} // namespace

PackedSimulator::PackedSimulator(const Netlist &nl)
    : nl_(&nl), flat_(&nl.flat())
{
    if (!nl.finalized())
        throw std::logic_error(
            "PackedSimulator requires a finalized netlist");
    size_t n = nl.numGates();
    valV_.assign(n, 0);
    valK_.assign(n, 0);
    prevV_.assign(n, 0);
    prevK_.assign(n, 0);
    act_.assign(n, 0);
    actPrev_.assign(n, 0);
    loadedPrevEdge_.assign(nl.seqGates().size(), ~uint64_t(0));
    topModuleOf_.resize(n);
    for (GateId g = 0; g < n; ++g)
        topModuleOf_[g] = nl.topLevelModuleOf(nl.gate(g).module);
    hookFns_.resize(nl.hooks().size());
    moduleEnergy_.assign(size_t(nl.numModules()) * kLanes, 0.0);
}

void
PackedSimulator::setHookFn(uint32_t hook_id, HookFn fn)
{
    hookFns_.at(hook_id) = std::move(fn);
}

void
PackedSimulator::addEdgeFn(EdgeFn fn)
{
    edgeFns_.push_back(std::move(fn));
}

void
PackedSimulator::setInput(GateId g, V64 v)
{
    assert(flat_->kind[g] == CellKind::Input);
    valV_[g] = v.v;
    valK_[g] = v.k;
}

void
PackedSimulator::setInputLane(GateId g, unsigned lane, V4 v)
{
    V64 cur = value(g);
    cur.setLane(lane, v);
    setInput(g, cur);
}

uint64_t
PackedSimulator::injectSeuFlip(GateId g, uint64_t lane_mask)
{
    assert(isSequential(flat_->kind[g]));
    V64 q = value(g);
    uint64_t m = q.flipKnown(lane_mask);
    valV_[g] = q.v;
    // An upset is a real output transition in its lane; the packed
    // oblivious sweep re-evaluates every fanout anyway, so no wake
    // marks are needed (unlike the scalar event-driven kernel).
    act_[g] |= m;
    return m;
}

void
PackedSimulator::setInputBusAll(const std::vector<GateId> &bus,
                                Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        setInput(bus[i], V64::splat(w.bit(unsigned(i))));
}

void
PackedSimulator::setInputBusLanes(const std::vector<GateId> &bus,
                                  const std::array<Word16, kLanes> &lanes)
{
    for (size_t i = 0; i < bus.size(); ++i) {
        uint64_t bit = uint64_t(1) << i;
        V64 v;
        for (unsigned l = 0; l < kLanes; ++l) {
            uint64_t m = uint64_t(1) << l;
            if (lanes[l].xmask & bit)
                continue; // lane stays X
            v.k |= m;
            if (lanes[l].value & bit)
                v.v |= m;
        }
        setInput(bus[i], v);
    }
}

Word16
PackedSimulator::readBusLane(const std::vector<GateId> &bus,
                             unsigned lane) const
{
    Word16 w;
    for (size_t i = 0; i < bus.size(); ++i)
        w.setBit(unsigned(i), valueLane(bus[i], lane));
    return w;
}

std::vector<double>
PackedSimulator::moduleBoundEnergyLaneJ(unsigned lane) const
{
    size_t nmod = moduleEnergy_.size() / kLanes;
    std::vector<double> out(nmod);
    for (size_t m = 0; m < nmod; ++m)
        out[m] = moduleEnergy_[m * kLanes + lane];
    return out;
}

void
PackedSimulator::addBehavioralEnergyJ(double j, ModuleId top_module,
                                      uint64_t lane_mask)
{
    double *modrow = &moduleEnergy_[size_t(top_module) * kLanes];
    while (lane_mask) {
        unsigned l = unsigned(__builtin_ctzll(lane_mask));
        lane_mask &= lane_mask - 1;
        actual_[l] += j;
        bound_[l] += j;
        behavioral_[l] += j;
        modrow[l] += j;
    }
}

void
PackedSimulator::evalSeqGate(size_t i)
{
    const FlatNetlist &f = *flat_;
    GateId g = nl_->seqGates()[i];
    uint32_t off = f.faninOffset[g];
    unsigned nin = f.nin[g];
    uint64_t qv = prevV_[g], qk = prevK_[g];
    uint64_t dv = prevV_[f.fanin[off]], dk = prevK_[f.fanin[off]];
    // Absent pins behave as constant 1 (enable on, reset released),
    // exactly like evalSeqCell's defaults.
    uint64_t env = ~uint64_t(0), enk = ~uint64_t(0);
    uint64_t rv = ~uint64_t(0), rk = ~uint64_t(0);
    switch (f.kind[g]) {
      case CellKind::Dff:
        break;
      case CellKind::Dffe:
        env = prevV_[f.fanin[off + 1]];
        enk = prevK_[f.fanin[off + 1]];
        break;
      case CellKind::Dffr:
        rv = prevV_[f.fanin[off + 1]];
        rk = prevK_[f.fanin[off + 1]];
        break;
      case CellKind::Dffre:
        env = prevV_[f.fanin[off + 1]];
        enk = prevK_[f.fanin[off + 1]];
        rv = prevV_[f.fanin[off + 2]];
        rk = prevK_[f.fanin[off + 2]];
        break;
      default:
        assert(false && "evalSeqGate on non-sequential kind");
        return;
    }

    // Enable stage (evalSeqCell): en==1 loads d, en==0 provably holds
    // q, en==X resolves only where q and d are known-equal (and then
    // the hold is provable too).
    uint64_t en1 = env; // canonical: v subset of k
    uint64_t en0 = enk & ~env;
    uint64_t enx = ~enk;
    uint64_t agree = qk & dk & ~(qv ^ dv);
    uint64_t loadedK = (en1 & dk) | (en0 & qk) | (enx & agree);
    uint64_t loadedV = (en1 & dv) | (en0 & qv) | (enx & agree & qv);
    uint64_t held = en0 | (enx & agree);

    // Reset stage: rstn==0 clears (provable hold only if q was already
    // 0); rstn==X yields 0 only where the loaded value is 0, and never
    // proves a hold.
    uint64_t r1 = rv;
    uint64_t r0 = rk & ~rv;
    uint64_t rx = ~rk;
    uint64_t newV = r1 & loadedV;
    uint64_t newK = (r1 & loadedK) | r0 | (rx & loadedK & ~loadedV);
    held = (r1 & held) | (r0 & qk & ~qv);

    valV_[g] = newV;
    valK_[g] = newK;

    // Activity (evalSeqGate in simulator.cc, per lane): held lanes are
    // inactive; known->known lanes toggle on value change; lanes
    // involving X may have toggled unless the previous edge loaded,
    // no control pin is X, the D pin was inactive and knownness is
    // unchanged.
    uint64_t bothKnown = newK & qk;
    uint64_t actKnown = bothKnown & (newV ^ qv);
    uint64_t ctrlX = 0;
    for (unsigned p = 1; p < nin; ++p)
        ctrlX |= ~prevK_[f.fanin[off + p]];
    uint64_t xTerm = ~loadedPrevEdge_[i] | ctrlX |
                     actPrev_[f.fanin[off]] | (newK ^ qk);
    act_[g] = ~held & (actKnown | (~bothKnown & xTerm));
    loadedPrevEdge_[i] = ~held;
}

void
PackedSimulator::evalNode(uint32_t node)
{
    const FlatNetlist &f = *flat_;
    if (node >= f.numGates) {
        HookFn &fn = hookFns_[node - f.numGates];
        if (fn)
            fn(*this);
        return;
    }
    GateId g = node;
    switch (f.kind[g]) {
      case CellKind::Const0:
        valV_[g] = 0;
        valK_[g] = ~uint64_t(0);
        act_[g] = 0;
        return;
      case CellKind::Const1:
        valV_[g] = ~uint64_t(0);
        valK_[g] = ~uint64_t(0);
        act_[g] = 0;
        return;
      case CellKind::Input: {
        // Changed lanes are active; X lanes may toggle at any time.
        uint64_t diff =
            (valV_[g] ^ prevV_[g]) | (valK_[g] ^ prevK_[g]);
        act_[g] = diff | ~valK_[g];
        return;
      }
      default:
        break;
    }

    V64 ins[4];
    uint64_t faninAct = 0;
    uint32_t off = f.faninOffset[g];
    unsigned nin = f.nin[g];
    for (unsigned p = 0; p < nin; ++p) {
        GateId src = f.fanin[off + p];
        ins[p] = V64(valV_[src], valK_[src]);
        faninAct |= act_[src];
    }
    V64 v = packedEvalCell(f.kind[g], ins);
    valV_[g] = v.v;
    valK_[g] = v.k;
    uint64_t diff = (v.v ^ prevV_[g]) | (v.k ^ prevK_[g]);
    act_[g] = diff | (~v.k & faninAct);
}

void
PackedSimulator::accumulateEnergy()
{
    // Ascending gate id, one energy term per active lane per gate:
    // lane l's accumulation order equals the scalar kernel's
    // canonicalized active-list order, so the float sums match bit
    // for bit.
    const FlatNetlist &f = *flat_;
    for (GateId g = 0; g < f.numGates; ++g) {
        uint64_t a = act_[g];
        if (!a)
            continue;
        uint64_t pv = prevV_[g], pk = prevK_[g];
        uint64_t cv = valV_[g], ck = valK_[g];
        double riseE = nl_->riseEnergyJ(g);
        double fallE = nl_->fallEnergyJ(g);
        double *modrow =
            &moduleEnergy_[size_t(topModuleOf_[g]) * kLanes];

        // Known->known toggles: concrete transition (actual + bound).
        // Equal known-known lanes are X-propagation flags only.
        uint64_t m = a & pk & ck & (pv ^ cv);
        while (m) {
            unsigned l = unsigned(__builtin_ctzll(m));
            m &= m - 1;
            double e = ((cv >> l) & 1) ? riseE : fallE;
            actual_[l] += e;
            bound_[l] += e;
            modrow[l] += e;
        }
        // Known prev, X cur: assign the X to !p.
        m = a & pk & ~ck;
        while (m) {
            unsigned l = unsigned(__builtin_ctzll(m));
            m &= m - 1;
            double e = ((pv >> l) & 1) ? fallE : riseE;
            bound_[l] += e;
            modrow[l] += e;
        }
        // X prev, known cur: assign the previous X to !c.
        m = a & ~pk & ck;
        while (m) {
            unsigned l = unsigned(__builtin_ctzll(m));
            m &= m - 1;
            double e = ((cv >> l) & 1) ? riseE : fallE;
            bound_[l] += e;
            modrow[l] += e;
        }
        // Both unknown: the cell's maximum-power transition.
        m = a & ~pk & ~ck;
        if (m) {
            double e = f.maxE[g];
            while (m) {
                unsigned l = unsigned(__builtin_ctzll(m));
                m &= m - 1;
                bound_[l] += e;
                modrow[l] += e;
            }
        }
    }
}

void
PackedSimulator::step(
    const std::function<void(PackedSimulator &)> &driver)
{
    if (cycle_ > 0)
        for (auto &fn : edgeFns_)
            fn(*this);

    actPrev_ = act_;
    prevV_ = valV_;
    prevK_ = valK_;
    actual_.fill(0.0);
    bound_.fill(0.0);
    behavioral_.fill(0.0);
    std::fill(moduleEnergy_.begin(), moduleEnergy_.end(), 0.0);

    for (size_t i = 0; i < nl_->seqGates().size(); ++i)
        evalSeqGate(i);
    if (driver)
        driver(*this);
    for (uint32_t node : flat_->schedule)
        evalNode(node);

    accumulateEnergy();
    ++cycle_;
}

uint64_t
PackedSimulator::hashLaneState(unsigned lane) const
{
    // Per lane, byte for byte what Simulator::hashFullState mixes:
    // values, the zero-padded activity flags, load history.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint8_t b) {
        h ^= b;
        h *= 0x100000001b3ull;
    };
    size_t n = valV_.size();
    for (size_t g = 0; g < n; ++g)
        mix(uint8_t(V64(valV_[g], valK_[g]).lane(lane)));
    size_t padded = (n + 7) & ~size_t(7);
    for (size_t g = 0; g < padded; ++g)
        mix(g < n ? uint8_t((act_[g] >> lane) & 1) : uint8_t(0));
    for (size_t i = 0; i < loadedPrevEdge_.size(); ++i)
        mix(uint8_t((loadedPrevEdge_[i] >> lane) & 1));
    return h;
}

void
PackedSimulator::loadLaneState(unsigned lane,
                               const Simulator::Snapshot &s)
{
    size_t n = valV_.size();
    if (s.val.size() != n)
        throw std::logic_error(
            "loadLaneState from a snapshot of a different netlist");
    uint64_t m = uint64_t(1) << lane;
    for (size_t g = 0; g < n; ++g) {
        V4 v = s.val[g];
        if (v == V4::X) {
            valV_[g] &= ~m;
            valK_[g] &= ~m;
        } else {
            valK_[g] |= m;
            if (v == V4::One)
                valV_[g] |= m;
            else
                valV_[g] &= ~m;
        }
        if (s.activeLast[g])
            act_[g] |= m;
        else
            act_[g] &= ~m;
    }
    for (size_t i = 0; i < loadedPrevEdge_.size(); ++i) {
        if (s.loadedPrevEdge[i])
            loadedPrevEdge_[i] |= m;
        else
            loadedPrevEdge_[i] &= ~m;
    }
}

Simulator::Snapshot
PackedSimulator::extractLaneState(unsigned lane, uint64_t cycle) const
{
    Simulator::Snapshot s;
    size_t n = valV_.size();
    s.val.resize(n);
    for (size_t g = 0; g < n; ++g)
        s.val[g] = V64(valV_[g], valK_[g]).lane(lane);
    // The scalar active_ array is zero-padded to a whole number of
    // words for the word-at-a-time delta diff; emit the same shape so
    // the transpose round-trips byte for byte.
    s.activeLast.assign((n + 7) & ~size_t(7), 0);
    for (size_t g = 0; g < n; ++g)
        s.activeLast[g] = uint8_t((act_[g] >> lane) & 1);
    s.loadedPrevEdge.resize(loadedPrevEdge_.size());
    for (size_t i = 0; i < loadedPrevEdge_.size(); ++i)
        s.loadedPrevEdge[i] =
            uint8_t((loadedPrevEdge_[i] >> lane) & 1);
    s.cycle = cycle;
    return s;
}

void
PackedSimulator::forceLane(GateId g, unsigned lane, V4 v)
{
    // Same restriction as Simulator::forceValue: a scheduled
    // combinational gate would be recomputed by the next sweep.
    assert(isSequential(flat_->kind[g]) ||
           flat_->kind[g] == CellKind::Input);
    uint64_t m = uint64_t(1) << lane;
    if (v == V4::X) {
        valV_[g] &= ~m;
        valK_[g] &= ~m;
    } else {
        valK_[g] |= m;
        if (v == V4::One)
            valV_[g] |= m;
        else
            valV_[g] &= ~m;
    }
}

void
PackedSimulator::forceBusLane(const std::vector<GateId> &bus,
                              unsigned lane, Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        forceLane(bus[i], lane, w.bit(unsigned(i)));
}

V4
PackedSimulator::predictSeqValueLane(GateId g, unsigned lane) const
{
    const FlatNetlist &f = *flat_;
    uint32_t off = f.faninOffset[g];
    V4 ins[3];
    for (unsigned p = 0; p < f.nin[g]; ++p)
        ins[p] = valueLane(f.fanin[off + p], lane);
    bool held = false;
    return evalSeqCell(f.kind[g], valueLane(g, lane), ins, held);
}

} // namespace ulpeak
