/**
 * @file
 * Validation utilities of Section 3.4: the X-based analysis must (a)
 * mark a superset of the gates any input-based run toggles
 * (Figure 3.4) and (b) produce a per-cycle power trace that upper-
 * bounds every input-based power trace (Figure 3.5).
 */

#ifndef ULPEAK_PEAK_VALIDATION_HH
#define ULPEAK_PEAK_VALIDATION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpeak {
namespace peak {

struct ActivityValidation {
    bool isSuperset = false;
    size_t commonGates = 0;     ///< toggled in both analyses
    size_t xOnlyGates = 0;      ///< potentially-toggled only (blue
                                ///< triangles in Figure 3.4)
    size_t inputOnlyGates = 0;  ///< would be a soundness bug
};

/** Compare the X-based potentially-toggled set against a concrete
 *  run's toggled set. */
ActivityValidation
validateActivity(const std::vector<uint8_t> &x_based,
                 const std::vector<uint8_t> &input_based);

struct TraceValidation {
    bool bounds = false;
    uint64_t violations = 0;
    uint64_t comparedCycles = 0;
    double maxViolationW = 0.0;
    /** Mean (x - concrete) over compared cycles: how tight the bound
     *  is (Figure 3.5 shows the traces close together). */
    double meanSlackW = 0.0;
};

/**
 * Check that the X-based per-cycle trace upper-bounds the concrete
 * trace, cycle-aligned (valid for matching execution paths; for
 * forked programs compare along the concrete path's prefix).
 */
TraceValidation validateTraceBound(const std::vector<float> &x_trace,
                                   const std::vector<float> &c_trace,
                                   double tolerance_w = 1e-9);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_VALIDATION_HH
