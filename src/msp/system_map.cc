#include "msp/cpu.hh"

namespace ulpeak {
namespace msp {

const char *
fsmStateName(unsigned s)
{
    switch (s) {
      case kStResetV: return "RESETV";
      case kStFetch: return "FETCH";
      case kStSrcExt: return "SRCEXT";
      case kStSrcRd: return "SRCRD";
      case kStDstExt: return "DSTEXT";
      case kStDstRd: return "DSTRD";
      case kStExec: return "EXEC";
      case kStDstWr: return "DSTWR";
      case kStPushWr: return "PUSHWR";
      case kStHalt: return "HALT";
      default: return "?";
    }
}

} // namespace msp
} // namespace ulpeak
