/**
 * @file
 * The `ullint` command-line driver: static analysis of the gate-level
 * core netlist, built on src/lint.
 *
 * One run executes both lint passes (docs/architecture.md "Static
 * netlist analysis"):
 *
 *  - structural lint: combinational loops, floating fanin slots,
 *    multi-driven nets (overlapping behavioral-hook outputs), dead
 *    gates, fanout hotspots -- scenario-independent connectivity
 *    checks whose Error count is the process exit status;
 *  - scenario-aware constant analysis, once per --scenario: the
 *    gates provably constant under that deployment scenario, their
 *    settle depths, the prune mask `ulpeak --static-prune` installs,
 *    and the static energy split (quiescent vs still-switchable
 *    upper bound) with per-module quiescent cones.
 *
 * Scenarios are analyzed by a --jobs worker pool; the report (stdout
 * and --json) is ordered by scenario index and is byte-identical for
 * every --jobs value (pinned by tests/test_lint.cc). There is no
 * disk cache: a full run is a few milliseconds, far below the cost
 * of validating one.
 *
 * Exit status: 0 = no structural errors, 1 = structural errors
 * found, 2 = usage error.
 */

#ifndef ULPEAK_CLI_LINT_DRIVER_HH
#define ULPEAK_CLI_LINT_DRIVER_HH

#include <string>
#include <vector>

namespace ulpeak {
namespace cli {

/** Parsed command line of the `ullint` tool. */
struct LintCliOptions {
    /** --scenario: names or .json files (scenario::Scenario::resolve
     *  specs); empty = the unconstrained default scenario. */
    std::vector<std::string> scenarioSpecs;
    unsigned jobs = 1;          ///< --jobs: scenario analysis workers
    double freqHz = 100e6;      ///< --freq: static peak power clock
    unsigned fanoutThreshold = 0; ///< --fanout-threshold (0 = auto)
    unsigned maxDeadListed = 16;  ///< --dead-limit sample size
    std::string jsonPath;       ///< --json FILE ("-" = stdout)
    bool noTimings = false;     ///< --no-timings: reproducible JSON
    bool quiet = false;         ///< --quiet: suppress stdout report
    bool help = false;          ///< --help
};

std::string lintUsage();

/** Parse @p argv; on bad usage returns false and sets @p err. */
bool parseLintArgs(int argc, const char *const *argv,
                   LintCliOptions &out, std::string &err);

/** The complete driver behind tools/ullint_main.cc. */
int runLintCli(int argc, const char *const *argv);

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_LINT_DRIVER_HH
