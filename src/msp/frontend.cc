/**
 * @file
 * Frontend: instruction register, full MSP430 decode (formats I/II/III,
 * addressing-mode matrix, constant generator) and the one-hot control
 * FSM realizing the isa::MicroPlan schedule.
 */

#include "isa/encoding.hh"
#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

using hw::Builder;

namespace {

/** Build a decode network over @p word. */
DecodeSignals
buildDecode(Builder &b, const Bus &word)
{
    DecodeSignals d;
    d.word = word;
    const Bus &w = word;

    Sig w15 = w[15], w14 = w[14], w13 = w[13], w12 = w[12];
    Sig byteMode = w[6];

    d.isFmtI = b.or2(w15, w14);
    Sig isFmtIII = b.and2(b.and2(b.inv(w15), b.inv(w14)), w13);
    d.isJump = isFmtIII;
    // bits 15..10 == 000100; in (10..15) bit order that is value 0x04.
    Bus top6{w[10], w[11], w12, w13, w14, w15};
    d.isFmtII = hw::equalConst(b, top6, 0x04);

    // Format I opcode one-hot (top nibble 4..15, DADD=0xA invalid).
    Bus top4{w12, w13, w14, w15};
    static const unsigned fmtICodes[11] = {0x4, 0x5, 0x6, 0x7, 0x8,
                                           0x9, 0xb, 0xc, 0xd, 0xe,
                                           0xf};
    for (unsigned i = 0; i < 11; ++i)
        d.fmtIOp[i] = hw::equalConst(b, top4, fmtICodes[i]);
    Sig isDadd = hw::equalConst(b, top4, 0xa);

    // Format II sub-opcode one-hot (bits 9:7), RETI(6)/7 invalid here.
    Bus sub{w[7], w[8], w[9]};
    for (unsigned i = 0; i < 6; ++i)
        d.fmtIIOp[i] = b.and2(d.isFmtII, hw::equalConst(b, sub, i));
    Sig fmtIIValid = b.orN({d.fmtIIOp[0], d.fmtIIOp[1], d.fmtIIOp[2],
                            d.fmtIIOp[3], d.fmtIIOp[4], d.fmtIIOp[5]});

    d.valid = b.orN({b.and2(d.isFmtI,
                            b.and2(b.inv(isDadd), b.inv(byteMode))),
                     isFmtIII, b.and2(fmtIIValid, b.inv(byteMode))});

    d.jumpCond = Bus{w[10], w[11], w12};
    d.jumpOffset =
        Bus{w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], w[8], w[9]};

    // Register fields. Format II carries its operand register in the
    // low nibble; format I sources come from bits 11:8.
    Bus lowNibble{w[0], w[1], w[2], w[3]};
    Bus srcNibble{w[8], w[9], w[10], w[11]};
    d.sreg = b.busMux(d.isFmtII, srcNibble, lowNibble);
    d.dreg = lowNibble;

    // Addressing modes + constant generator.
    Sig as0 = w[4], as1 = w[5];
    Sig as00 = b.and2(b.inv(as1), b.inv(as0));
    Sig as01 = b.and2(b.inv(as1), as0);
    Sig as10 = b.and2(as1, b.inv(as0));
    Sig as11 = b.and2(as1, as0);

    Sig sIsR0 = hw::equalConst(b, d.sreg, 0);
    Sig sIsR2 = hw::equalConst(b, d.sreg, 2);
    Sig sIsR3 = hw::equalConst(b, d.sreg, 3);

    SrcModeSignals &m = d.src;
    m.isConst = b.or2(sIsR3, b.and2(sIsR2, as1));
    m.isReg = b.and2(as00, b.inv(sIsR3));
    m.isAbsolute = b.and2(as01, sIsR2);
    // Indexed covers symbolic x(PC) too; r2 is absolute mode and r3 is
    // the +1 constant in As=01.
    m.isIndexed = b.and2(as01, b.and2(b.inv(sIsR2), b.inv(sIsR3)));
    m.isIndirect = b.and2(as10, b.and2(b.inv(sIsR2), b.inv(sIsR3)));
    m.isImmediate = b.and2(as11, sIsR0);
    m.isIndirectInc =
        b.and2(as11, b.andN({b.inv(sIsR0), b.inv(sIsR2), b.inv(sIsR3)}));

    // Constant generator value:
    //   r3: as=00 -> 0, 01 -> 1, 10 -> 2, 11 -> -1
    //   r2: as=10 -> 4, 11 -> 8
    Sig minus1 = b.and2(sIsR3, as11);
    Sig plus1 = b.and2(sIsR3, as01);
    Sig plus2 = b.and2(sIsR3, as10);
    Sig plus4 = b.and2(sIsR2, as10);
    Sig plus8 = b.and2(sIsR2, as11);
    d.cgValue.assign(16, kNoGate);
    d.cgValue[0] = b.or2(plus1, minus1);
    d.cgValue[1] = b.or2(plus2, minus1);
    d.cgValue[2] = b.or2(plus4, minus1);
    d.cgValue[3] = b.or2(plus8, minus1);
    for (unsigned i = 4; i < 16; ++i)
        d.cgValue[i] = minus1;

    // Micro-plan flags. The source phase applies to format I and the
    // operand-bearing format II ops; jumps bypass it entirely.
    Sig srcActive = b.or2(d.isFmtI, fmtIIValid);
    d.needsSrcExt = b.and2(
        srcActive,
        b.orN({m.isIndexed, m.isAbsolute, m.isImmediate}));
    d.needsSrcRd = b.and2(
        srcActive, b.orN({m.isIndexed, m.isAbsolute, m.isIndirect,
                          m.isIndirectInc}));

    Sig ad = w[7];
    Sig dIsR2 = hw::equalConst(b, d.dreg, 2);
    d.dstIsMem = b.and2(d.isFmtI, ad);
    d.dstIsReg = b.and2(d.isFmtI, b.inv(ad));
    d.dstIsAbsolute = b.and2(d.dstIsMem, dIsR2);
    d.needsDstExt = d.dstIsMem;

    Sig opMov = d.fmtIOp[size_t(isa::Op::Mov)];
    Sig opCmp = d.fmtIOp[size_t(isa::Op::Cmp)];
    Sig opBit = d.fmtIOp[size_t(isa::Op::Bit)];
    Sig opBic = d.fmtIOp[size_t(isa::Op::Bic)];
    Sig opBis = d.fmtIOp[size_t(isa::Op::Bis)];
    d.needsDstRd = b.and2(d.dstIsMem, b.inv(opMov));

    Sig shiftOp =
        b.orN({d.fmtIIOp[0], d.fmtIIOp[1], d.fmtIIOp[2], d.fmtIIOp[3]});
    Sig fmtIWr = b.and2(d.dstIsMem, b.inv(b.or2(opCmp, opBit)));
    d.needsDstWr = b.or2(fmtIWr, b.and2(shiftOp, d.needsSrcRd));

    d.isPush = b.or2(d.fmtIIOp[4], d.fmtIIOp[5]);
    d.isCall = d.fmtIIOp[5];

    d.writesDstReg =
        b.and2(d.dstIsReg, b.inv(b.or2(opCmp, opBit)));
    d.fmtIIWritesReg = b.and2(shiftOp, m.isReg);

    // Flag updates: format I except MOV/BIC/BIS; format II RRC/RRA/SXT.
    Sig fmtIFlags = b.and2(
        d.isFmtI, b.inv(b.orN({opMov, opBic, opBis})));
    Sig fmtIIFlags =
        b.orN({d.fmtIIOp[0], d.fmtIIOp[2], d.fmtIIOp[3]});
    d.setsFlags = b.or2(fmtIFlags, fmtIIFlags);
    return d;
}

} // namespace

void
buildFrontend(Builder &b, CpuBuild &c)
{
    hw::ModuleScope scope(b, "frontend");
    c.h->modFrontend = b.currentModule();

    // Instruction register: a DFFE loaded only while fetching, so a
    // stale (or X) IR is provably idle between fetches.
    Sig irEnWire = b.wireDecl("ir_we");
    hw::Reg ir = b.regDecl(16, "ir", irEnWire, c.rstn);
    c.irQ = ir.q();
    c.h->ir = ir.q();

    // Two decode instances: the datapath (and every post-FETCH state
    // transition) decodes the committed IR; the FETCH-exit decision
    // speculatively decodes the in-flight word on mdb_in so fetch
    // costs a single cycle. Keeping the datapath decode off mdb_in
    // also keeps the RAM macro's address pins free of combinational
    // feedback through its own read data.
    c.dec = buildDecode(b, c.irQ);
    DecodeSignals dn = buildDecode(b, c.mdbIn);
    const DecodeSignals &d = c.dec;

    ir.connect(c.mdbIn);

    // ---- One-hot FSM ----------------------------------------------
    // State registers: DFFR cleared by reset; RESETV is stored
    // inverted so reset forces it active.
    std::array<hw::Reg, kNumStates> stRegs;
    std::array<Sig, kNumStates> st{};
    for (unsigned s = 0; s < kNumStates; ++s) {
        stRegs[s] = b.regDecl(1, std::string("state_") + fsmStateName(s),
                              kNoGate, c.rstn);
        st[s] = s == kStResetV ? b.inv(stRegs[s].q(0)) : stRegs[s].q(0);
    }
    c.st = st;
    c.h->state = st;

    // FETCH-exit terms come from the speculative decode (dn); every
    // other transition sees the instruction already in IR (d).
    Sig afterFetch = b.and2(st[kStFetch], dn.valid);
    Sig afterFetchOp = b.and2(afterFetch, b.inv(dn.isJump));

    Sig fetchToSrcDone = b.and2(
        afterFetchOp,
        b.and2(b.inv(dn.needsSrcExt), b.inv(dn.needsSrcRd)));
    Sig srcDoneFromFetch = fetchToSrcDone; // dn-qualified
    Sig srcDoneLater = b.or2(
        b.and2(st[kStSrcExt], b.inv(d.needsSrcRd)), st[kStSrcRd]);

    Sig nextSrcExt = b.and2(afterFetchOp, dn.needsSrcExt);
    Sig nextSrcRd =
        b.or2(b.and2(afterFetchOp,
                     b.and2(b.inv(dn.needsSrcExt), dn.needsSrcRd)),
              b.and2(st[kStSrcExt], d.needsSrcRd));
    Sig nextDstExt = b.or2(b.and2(srcDoneFromFetch, dn.needsDstExt),
                           b.and2(srcDoneLater, d.needsDstExt));
    Sig nextDstRd = b.orN(
        {b.and2(srcDoneFromFetch,
                b.and2(b.inv(dn.needsDstExt), dn.needsDstRd)),
         b.and2(srcDoneLater,
                b.and2(b.inv(d.needsDstExt), d.needsDstRd)),
         b.and2(st[kStDstExt], d.needsDstRd)});
    Sig nextExec = b.orN(
        {b.and2(srcDoneFromFetch,
                b.and2(b.inv(dn.needsDstExt), b.inv(dn.needsDstRd))),
         b.and2(srcDoneLater,
                b.and2(b.inv(d.needsDstExt), b.inv(d.needsDstRd))),
         b.and2(st[kStDstExt], b.inv(d.needsDstRd)), st[kStDstRd],
         b.and2(afterFetch, dn.isJump)});
    Sig nextDstWr = b.and2(st[kStExec], d.needsDstWr);
    Sig nextPushWr = b.and2(st[kStExec], d.isPush);
    Sig nextHalt =
        b.or2(st[kStHalt], b.and2(st[kStFetch], b.inv(dn.valid)));
    Sig nextFetch = b.orN(
        {st[kStResetV], st[kStDstWr], st[kStPushWr],
         b.and2(st[kStExec],
                b.and2(b.inv(d.needsDstWr), b.inv(d.isPush)))});

    stRegs[kStResetV].connect({b.one()}); // q=1 after reset => inactive
    stRegs[kStFetch].connect({nextFetch});
    stRegs[kStSrcExt].connect({nextSrcExt});
    stRegs[kStSrcRd].connect({nextSrcRd});
    stRegs[kStDstExt].connect({nextDstExt});
    stRegs[kStDstRd].connect({nextDstRd});
    stRegs[kStExec].connect({nextExec});
    stRegs[kStDstWr].connect({nextDstWr});
    stRegs[kStPushWr].connect({nextPushWr});
    stRegs[kStHalt].connect({nextHalt});

    b.wireConnect(irEnWire, st[kStFetch]);
}

} // namespace msp
} // namespace ulpeak
