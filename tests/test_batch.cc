/**
 * @file
 * Tests of the batch driver (peak::analyzeBatch + the cli layer):
 * suite determinism under program-level parallelism (jobs=1 and
 * jobs=N must produce byte-identical JSON modulo timings, and match
 * serial single-program peak::analyze bit for bit), disk-cache
 * hit/miss behavior including corrupted entries, cache-key exclusion
 * rules, error propagation when one program of a suite fails, and the
 * CLI surface (argument parsing, program resolution, CSV shape).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "bench430/benchmarks.hh"
#include "cli/driver.hh"
#include "cli/fault_driver.hh"
#include "peak/batch.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

namespace fs = std::filesystem;

std::vector<peak::BatchProgram>
smallSuite()
{
    // The three fastest bench430 programs keep the suite tests quick.
    return cli::resolvePrograms({"mult", "tHold", "intAVG"});
}

/** A busy-wait loop on port input: rejected as an unbounded
 *  input-dependent loop when the loop bound is 0. */
isa::Image
unboundedLoopImage()
{
    return isa::assemble(test::wrapProgram(R"(
bw_wait:
        mov &0x0020, r4
        and #1, r4
        jnz bw_wait
    )"));
}

/** RAII temp directory for cache tests. */
struct TempDir {
    fs::path path;
    TempDir()
    {
        path = fs::temp_directory_path() /
               ("ulpeak_batch_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter()++));
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static unsigned &counter()
    {
        static unsigned c = 0;
        return c;
    }
};

TEST(Batch, MatchesSerialSingleProgramAnalyze)
{
    auto suite = smallSuite();
    peak::BatchOptions opts; // jobs=1, no cache
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rep.ok);
    ASSERT_EQ(rep.programs.size(), suite.size());

    msp::System &sys = test::sharedSystem();
    for (size_t i = 0; i < suite.size(); ++i) {
        peak::Report direct =
            peak::analyze(sys, suite[i].image, opts.analysis);
        ASSERT_TRUE(direct.ok) << suite[i].name;
        const peak::ProgramResult &r = rep.programs[i];
        EXPECT_EQ(r.name, suite[i].name);
        // Bit-identical, not approximately equal: the batch driver
        // must not perturb the per-program numbers in any way.
        EXPECT_EQ(r.peakPowerW, direct.peakPowerW) << r.name;
        EXPECT_EQ(r.peakEnergyJ, direct.peakEnergyJ) << r.name;
        EXPECT_EQ(r.npeJPerCycle, direct.npeJPerCycle) << r.name;
        EXPECT_EQ(r.maxPathCycles, direct.maxPathCycles) << r.name;
        EXPECT_EQ(r.totalCycles, direct.totalCycles) << r.name;
        EXPECT_EQ(r.pathsExplored, direct.pathsExplored) << r.name;
        EXPECT_EQ(r.dedupMerges, direct.dedupMerges) << r.name;
    }
}

TEST(Batch, DeterministicAcrossWorkerCounts)
{
    auto suite = smallSuite();
    peak::BatchOptions serial;
    serial.jobs = 1;
    peak::BatchOptions parallel;
    parallel.jobs = 4;

    peak::BatchReport a = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, serial);
    peak::BatchReport b = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, parallel);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);

    // Identical JSON modulo timings: the serializer drops wall-time
    // and cache/worker provenance when include_timings is false, and
    // everything that remains must match byte for byte.
    std::string ja = cli::toJson(a, serial, /*include_timings=*/false);
    std::string jb = cli::toJson(b, parallel,
                                 /*include_timings=*/false);
    EXPECT_EQ(ja, jb);

    EXPECT_EQ(a.maxPeakPowerW, b.maxPeakPowerW);
    EXPECT_EQ(a.maxPeakPowerProgram, b.maxPeakPowerProgram);
    EXPECT_EQ(a.maxPeakEnergyJ, b.maxPeakEnergyJ);
    EXPECT_EQ(a.maxNpeJPerCycle, b.maxNpeJPerCycle);
}

TEST(Batch, SuiteAggregatesAndSizing)
{
    auto suite = smallSuite();
    peak::BatchOptions opts;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rep.ok);

    double maxP = 0, maxE = 0;
    for (const auto &r : rep.programs) {
        maxP = std::max(maxP, r.peakPowerW);
        maxE = std::max(maxE, r.peakEnergyJ);
    }
    EXPECT_EQ(rep.maxPeakPowerW, maxP);
    EXPECT_EQ(rep.maxPeakEnergyJ, maxE);
    EXPECT_FALSE(rep.maxPeakPowerProgram.empty());

    // The supply table is sized from the suite maxima.
    ASSERT_EQ(rep.supply.harvesters.size(),
              sizing::harvesterTypes().size());
    ASSERT_EQ(rep.supply.batteries.size(),
              sizing::batteryTypes().size());
    EXPECT_EQ(rep.supply.peakPowerW, maxP);
    EXPECT_EQ(rep.supply.harvesters[0].areaCm2,
              sizing::harvesterAreaCm2(maxP,
                                       sizing::harvesterTypes()[0]));
}

TEST(Batch, CacheHitsReproduceColdRunExactly)
{
    TempDir dir;
    auto suite = smallSuite();
    peak::BatchOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir.path.string();

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, unsigned(suite.size()));
    for (const auto &r : cold.programs)
        EXPECT_FALSE(r.cached);

    peak::BatchReport warm = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.cacheHits, unsigned(suite.size()));
    EXPECT_EQ(warm.cacheMisses, 0u);
    for (size_t i = 0; i < suite.size(); ++i) {
        EXPECT_TRUE(warm.programs[i].cached);
        // Hexfloat round-trip: bit-identical to the cold run.
        EXPECT_EQ(warm.programs[i].peakPowerW,
                  cold.programs[i].peakPowerW);
        EXPECT_EQ(warm.programs[i].peakEnergyJ,
                  cold.programs[i].peakEnergyJ);
        EXPECT_EQ(warm.programs[i].npeJPerCycle,
                  cold.programs[i].npeJPerCycle);
        EXPECT_EQ(warm.programs[i].totalCycles,
                  cold.programs[i].totalCycles);
    }
    EXPECT_EQ(cli::toJson(warm, opts, false),
              cli::toJson(cold, opts, false));
}

TEST(Batch, CorruptedCacheEntryIsAMiss)
{
    TempDir dir;
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions opts;
    opts.cacheDir = dir.path.string();

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);

    // Truncate every cache entry; the next run must detect the
    // damage, recompute, and rewrite.
    for (const auto &e : fs::directory_iterator(dir.path))
        std::ofstream(e.path()) << "ulpeak-cache-v1\n";

    peak::BatchReport rerun = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rerun.ok);
    EXPECT_EQ(rerun.cacheHits, 0u);
    EXPECT_EQ(rerun.cacheMisses, 1u);
    EXPECT_EQ(rerun.programs[0].peakPowerW,
              cold.programs[0].peakPowerW);

    peak::BatchReport warm = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    EXPECT_EQ(warm.cacheHits, 1u);
}

// Regression (bugfix): cache entries now carry a format-version
// header. An entry written by a pre-envelope binary (v1 format, no
// envelope payload) must be a miss -- not deserialize into a report
// missing its envelope -- even if it lands at the right path.
TEST(Batch, StalePreEnvelopeCacheEntryIsAMiss)
{
    TempDir dir;
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions opts;
    opts.cacheDir = dir.path.string();
    opts.analysis.recordEnvelope = true;

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);
    ASSERT_TRUE(cold.programs[0].envelope.present);

    // Rewrite every entry as a complete, well-formed *v1* entry (the
    // old magic, scalar fields only): the version check alone must
    // reject it.
    for (const auto &e : fs::directory_iterator(dir.path))
        std::ofstream(e.path())
            << "ulpeak-cache-v1\n"
            << "peak_power_w_bits 3f50624dd2f1a9fc\n"
            << "peak_energy_j_bits 3f50624dd2f1a9fc\n"
            << "npe_j_per_cycle_bits 3f50624dd2f1a9fc\n"
            << "max_path_cycles 1\n"
            << "total_cycles 1\n"
            << "paths_explored 1\n"
            << "dedup_merges 0\n";

    peak::BatchReport rerun = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rerun.ok);
    EXPECT_EQ(rerun.cacheHits, 0u);
    EXPECT_EQ(rerun.cacheMisses, 1u);
    EXPECT_EQ(rerun.programs[0].peakPowerW,
              cold.programs[0].peakPowerW);
    EXPECT_EQ(rerun.programs[0].envelope.powerW,
              cold.programs[0].envelope.powerW);
}

// Regression (v2 -> v3 bump): a v2 entry was implicitly
// "unconstrained" -- the scenario joined the key and the header in
// v3, so a complete, well-formed v2 entry landing at a v3 path (hand
// copy, key collision) must be a miss even though every field it
// carries parses. Same pattern as the v1 -> v2 test above.
TEST(Batch, StaleV2CacheEntryIsAMiss)
{
    TempDir dir;
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions opts;
    opts.cacheDir = dir.path.string();

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);

    for (const auto &e : fs::directory_iterator(dir.path))
        std::ofstream(e.path())
            << "ulpeak-cache-v2\n"
            << "peak_power_w_bits 3f50624dd2f1a9fc\n"
            << "peak_energy_j_bits 3f50624dd2f1a9fc\n"
            << "npe_j_per_cycle_bits 3f50624dd2f1a9fc\n"
            << "max_path_cycles 1\n"
            << "total_cycles 1\n"
            << "paths_explored 1\n"
            << "dedup_merges 0\n";

    peak::BatchReport rerun = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rerun.ok);
    EXPECT_EQ(rerun.cacheHits, 0u);
    EXPECT_EQ(rerun.cacheMisses, 1u);
    EXPECT_EQ(rerun.programs[0].peakPowerW,
              cold.programs[0].peakPowerW);

    peak::BatchReport warm = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    EXPECT_EQ(warm.cacheHits, 1u);
}

// A corrupted version header (truncated magic, trailing garbage,
// binary junk) must never satisfy a lookup -- only the exact
// current-format magic line does.
TEST(Batch, CorruptedVersionHeaderIsAMiss)
{
    TempDir dir;
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions opts;
    opts.cacheDir = dir.path.string();

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);

    const char *badHeaders[] = {
        "ulpeak-cache-v",          // truncated
        "ulpeak-cache-v33",        // future/garbled version
        "ulpeak-cache-v3 extra",   // trailing junk on the magic line
        "ULPEAK-CACHE-V3",         // wrong case
        "\x7f\x45\x4c\x46ulpeak",  // binary junk
    };
    for (const char *magic : badHeaders) {
        std::string body;
        {
            // Keep a valid v3 *payload* under the bad header so the
            // test really exercises the header check alone.
            std::vector<fs::path> entries;
            for (const auto &e : fs::directory_iterator(dir.path))
                entries.push_back(e.path());
            ASSERT_EQ(entries.size(), 1u);
            std::ifstream in(entries[0]);
            std::string line;
            std::getline(in, line); // drop the (valid) magic
            std::stringstream rest;
            rest << in.rdbuf();
            body = rest.str();
            std::ofstream(entries[0]) << magic << "\n" << body;
        }
        peak::BatchReport rerun = peak::analyzeBatch(
            CellLibrary::tsmc65Like(), suite, opts);
        ASSERT_TRUE(rerun.ok);
        EXPECT_EQ(rerun.cacheHits, 0u) << "header: " << magic;
        EXPECT_EQ(rerun.cacheMisses, 1u) << "header: " << magic;
        EXPECT_EQ(rerun.programs[0].peakPowerW,
                  cold.programs[0].peakPowerW);
    }
}

// A v2 entry stored *without* the envelope payload (same binary,
// envelope recording off) must never satisfy an envelope-expecting
// lookup -- the two configurations use distinct keys, and the loader
// additionally rejects payload-free entries when an envelope is
// expected.
TEST(Batch, EnvelopeRunsDoNotShareEntriesWithScalarRuns)
{
    TempDir dir;
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions scalar;
    scalar.cacheDir = dir.path.string();
    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, scalar);
    ASSERT_TRUE(cold.ok);

    peak::BatchOptions withEnv = scalar;
    withEnv.analysis.recordEnvelope = true;
    peak::BatchReport env = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, withEnv);
    ASSERT_TRUE(env.ok);
    EXPECT_EQ(env.cacheHits, 0u); // distinct key: no cross-hit
    ASSERT_TRUE(env.programs[0].envelope.present);

    // Both configurations now hit their own entries.
    EXPECT_EQ(peak::analyzeBatch(CellLibrary::tsmc65Like(), suite,
                                 scalar)
                  .cacheHits,
              1u);
    peak::BatchReport warm = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, withEnv);
    EXPECT_EQ(warm.cacheHits, 1u);
    ASSERT_TRUE(warm.programs[0].envelope.present);
    // Bit-exact envelope round-trip, window curves rebuilt.
    EXPECT_EQ(warm.programs[0].envelope.powerW,
              env.programs[0].envelope.powerW);
    EXPECT_EQ(warm.programs[0].envelope.windowEnergyJ,
              env.programs[0].envelope.windowEnergyJ);
    EXPECT_EQ(warm.programs[0].envelope.peakWindowEnergyJ,
              env.programs[0].envelope.peakWindowEnergyJ);
}

TEST(Batch, EnvelopeJsonAndCsvDeterministicAcrossWorkerCounts)
{
    auto suite = smallSuite();
    peak::BatchOptions serial;
    serial.analysis.recordEnvelope = true;
    serial.jobs = 1;
    peak::BatchOptions parallel = serial;
    parallel.jobs = 4;
    parallel.analysis.numThreads = 2;

    peak::BatchReport a = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, serial);
    peak::BatchReport b = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, parallel);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_TRUE(a.suiteEnvelope.present);

    EXPECT_EQ(cli::toJson(a, serial, /*include_timings=*/false),
              cli::toJson(b, parallel, /*include_timings=*/false));
    EXPECT_EQ(cli::toEnvelopeCsv(a), cli::toEnvelopeCsv(b));
    // And the envelope actually made it into both serializations.
    std::string json = cli::toJson(a, serial, false);
    EXPECT_NE(json.find("\"suite_envelope\""), std::string::npos);
    EXPECT_NE(json.find("\"envelope_sizing\""), std::string::npos);
    EXPECT_NE(cli::toEnvelopeCsv(a).find("__suite__"),
              std::string::npos);
}

TEST(Cli, ParseEnvelopeArgs)
{
    const char *argv[] = {"ulpeak", "mult", "--envelope=csv",
                          "--windows", "1,8,64"};
    cli::CliOptions o;
    std::string err;
    ASSERT_TRUE(cli::parseArgs(5, argv, o, err)) << err;
    EXPECT_TRUE(o.envelope);
    EXPECT_EQ(o.envelopeFormat, "csv");
    ASSERT_EQ(o.windows, (std::vector<unsigned>{1, 8, 64}));
    peak::BatchOptions b = cli::toBatchOptions(o);
    EXPECT_TRUE(b.analysis.recordEnvelope);
    EXPECT_EQ(b.analysis.envelopeWindows, o.windows);

    const char *plain[] = {"ulpeak", "mult", "--envelope"};
    cli::CliOptions o2;
    ASSERT_TRUE(cli::parseArgs(3, plain, o2, err)) << err;
    EXPECT_TRUE(o2.envelope);
    EXPECT_EQ(o2.envelopeFormat, "json");
    // Default window set applies when --windows is absent.
    EXPECT_EQ(cli::toBatchOptions(o2).analysis.envelopeWindows,
              peak::defaultEnvelopeWindows());

    const char *bad[] = {"ulpeak", "mult", "--envelope=xml"};
    cli::CliOptions o3;
    EXPECT_FALSE(cli::parseArgs(3, bad, o3, err));
    EXPECT_NE(err.find("--envelope"), std::string::npos);

    const char *badwin[] = {"ulpeak", "mult", "--windows", "0,4"};
    cli::CliOptions o4;
    EXPECT_FALSE(cli::parseArgs(4, badwin, o4, err));
    EXPECT_NE(err.find("--windows"), std::string::npos);
}

TEST(Batch, CacheKeyExclusionRules)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    isa::Image img = cli::resolvePrograms({"mult"})[0].image;
    peak::Options base;
    uint64_t k0 = peak::cacheKey(lib, img, base);

    // Scheduling and kernel choices cannot affect results, so they
    // must not fragment the cache.
    peak::Options threads = base;
    threads.numThreads = 8;
    EXPECT_EQ(peak::cacheKey(lib, img, threads), k0);
    peak::Options mode = base;
    mode.evalMode = EvalMode::FullSweep;
    EXPECT_EQ(peak::cacheKey(lib, img, mode), k0);

    // Result-affecting knobs must.
    peak::Options freq = base;
    freq.freqHz = 8e6;
    EXPECT_NE(peak::cacheKey(lib, img, freq), k0);
    peak::Options bound = base;
    bound.inputDependentLoopBound = 4;
    EXPECT_NE(peak::cacheKey(lib, img, bound), k0);

    // Envelope recording changes what an entry must contain, so it
    // (and the window set) participates in the key.
    peak::Options env = base;
    env.recordEnvelope = true;
    uint64_t kEnv = peak::cacheKey(lib, img, env);
    EXPECT_NE(kEnv, k0);
    peak::Options envWin = env;
    envWin.envelopeWindows = {1, 8, 64};
    EXPECT_NE(peak::cacheKey(lib, img, envWin), kEnv);
    // ...but the window set is irrelevant while envelopes are off
    // (curves are never cached).
    peak::Options winOff = base;
    winOff.envelopeWindows = {1, 8, 64};
    EXPECT_EQ(peak::cacheKey(lib, img, winOff), k0);

    // And so must the image itself, and the cell library (by
    // content, so recalibrating energies invalidates the cache).
    isa::Image other = cli::resolvePrograms({"tHold"})[0].image;
    EXPECT_NE(peak::cacheKey(lib, other, base), k0);
    EXPECT_NE(peak::cacheKey(CellLibrary::f1610Like(), img, base), k0);
}

TEST(Batch, OneFailingProgramDoesNotPoisonTheSuite)
{
    auto suite = cli::resolvePrograms({"mult"});
    suite.push_back({"busywait", unboundedLoopImage()});
    suite.insert(suite.begin() + 1,
                 cli::resolvePrograms({"intAVG"})[0]);

    peak::BatchOptions opts;
    opts.jobs = 2;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);

    EXPECT_FALSE(rep.ok);
    EXPECT_TRUE(rep.programs[0].ok);
    EXPECT_TRUE(rep.programs[1].ok);
    EXPECT_FALSE(rep.programs[2].ok);
    EXPECT_NE(rep.programs[2].error.find("loop"), std::string::npos)
        << rep.programs[2].error;
    // Aggregates still cover the successful programs.
    EXPECT_GT(rep.maxPeakPowerW, 0.0);
    // The failed program appears in the JSON with its error.
    std::string json = cli::toJson(rep, opts, false);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("busywait"), std::string::npos);
}

TEST(Batch, FailFastSkipsUnclaimedPrograms)
{
    std::vector<peak::BatchProgram> suite;
    suite.push_back({"busywait", unboundedLoopImage()});
    auto rest = smallSuite();
    suite.insert(suite.end(), rest.begin(), rest.end());

    peak::BatchOptions opts;
    opts.jobs = 1; // deterministic claim order
    opts.failFast = true;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);

    EXPECT_FALSE(rep.ok);
    EXPECT_FALSE(rep.programs[0].ok);
    for (size_t i = 1; i < rep.programs.size(); ++i) {
        EXPECT_FALSE(rep.programs[i].ok);
        EXPECT_NE(rep.programs[i].error.find("skipped"),
                  std::string::npos);
    }
}

TEST(Cli, ParseArgs)
{
    const char *argv[] = {"ulpeak", "--programs", "mult,FFT",
                          "--jobs", "4", "--threads", "2", "--json",
                          "out.json", "--no-cache", "--quiet",
                          "tea8"};
    cli::CliOptions o;
    std::string err;
    ASSERT_TRUE(cli::parseArgs(12, argv, o, err)) << err;
    ASSERT_EQ(o.programSpecs.size(), 3u);
    EXPECT_EQ(o.programSpecs[0], "mult");
    EXPECT_EQ(o.programSpecs[1], "FFT");
    EXPECT_EQ(o.programSpecs[2], "tea8");
    EXPECT_EQ(o.jobs, 4u);
    EXPECT_EQ(o.threads, 2u);
    EXPECT_EQ(o.jsonPath, "out.json");
    EXPECT_TRUE(o.noCache);
    EXPECT_TRUE(o.quiet);

    const char *bad[] = {"ulpeak", "--jobs", "many"};
    cli::CliOptions o2;
    EXPECT_FALSE(cli::parseArgs(3, bad, o2, err));
    EXPECT_NE(err.find("--jobs"), std::string::npos);

    // Negative counts must be usage errors, not strtoull wraparound.
    const char *neg[] = {"ulpeak", "--threads", "-1", "mult"};
    cli::CliOptions o2b;
    EXPECT_FALSE(cli::parseArgs(4, neg, o2b, err));
    EXPECT_NE(err.find("--threads"), std::string::npos);

    const char *none[] = {"ulpeak"};
    cli::CliOptions o3;
    EXPECT_FALSE(cli::parseArgs(1, none, o3, err));
}

// --freq goes through parsePositiveDouble in both drivers: trailing
// garbage, non-positive and non-finite values are usage errors, not
// atof's silent truncation (atof("8e6x") == 8e6 used to run a whole
// campaign at a typo'd operating point).
TEST(Cli, FreqParsingRejectsTrailingGarbage)
{
    std::string err;
    for (const char *v : {"8e6x", "0", "-1e6", "inf", "nan", ""}) {
        const char *argv[] = {"ulpeak", "--freq", v, "mult"};
        cli::CliOptions o;
        EXPECT_FALSE(cli::parseArgs(4, argv, o, err)) << v;
        EXPECT_NE(err.find("--freq"), std::string::npos) << v;

        const char *fargv[] = {"ulfault", "mult", "--freq", v};
        cli::FaultCliOptions fo;
        EXPECT_FALSE(cli::parseFaultArgs(4, fargv, fo, err)) << v;
        EXPECT_NE(err.find("--freq"), std::string::npos) << v;
    }
    const char *good[] = {"ulpeak", "--freq", "8e6", "mult"};
    cli::CliOptions o;
    ASSERT_TRUE(cli::parseArgs(4, good, o, err)) << err;
    EXPECT_DOUBLE_EQ(o.freqHz, 8e6);
    const char *fgood[] = {"ulfault", "mult", "--freq", "8e6"};
    cli::FaultCliOptions fo;
    ASSERT_TRUE(cli::parseFaultArgs(4, fgood, fo, err)) << err;
    EXPECT_DOUBLE_EQ(fo.freqHz, 8e6);
}

TEST(Cli, ParseModesArgs)
{
    std::string err;
    const char *argv[] = {"ulpeak", "--modes", "--no-timings", "mult"};
    cli::CliOptions o;
    ASSERT_TRUE(cli::parseArgs(4, argv, o, err)) << err;
    EXPECT_TRUE(o.modes);
    EXPECT_EQ(o.modesFormat, "table");
    EXPECT_TRUE(o.noTimings);
    // --modes implies envelope recording in the analysis options.
    EXPECT_TRUE(cli::toBatchOptions(o).analysis.recordEnvelope);

    const char *jsonv[] = {"ulpeak", "--modes=json", "mult"};
    cli::CliOptions oj;
    ASSERT_TRUE(cli::parseArgs(3, jsonv, oj, err)) << err;
    EXPECT_EQ(oj.modesFormat, "json");

    const char *bad[] = {"ulpeak", "--modes=xml", "mult"};
    cli::CliOptions ob;
    EXPECT_FALSE(cli::parseArgs(3, bad, ob, err));
    EXPECT_NE(err.find("--modes"), std::string::npos);
}

TEST(Cli, ResolveProgramsAllAndErrors)
{
    auto all = cli::resolvePrograms({"all"});
    EXPECT_EQ(all.size(), bench430::allBenchmarkNames().size());
    EXPECT_EQ(all.size(), 14u);

    EXPECT_THROW(cli::resolvePrograms({"nosuchprog"}),
                 std::runtime_error);
    EXPECT_THROW(cli::resolvePrograms({"/no/such/file.s"}),
                 std::runtime_error);
}

TEST(Cli, ResolveProgramsFromAsmFile)
{
    TempDir dir;
    fs::create_directories(dir.path);
    fs::path asmfile = dir.path / "standalone.s";
    std::ofstream(asmfile) << test::wrapProgram(R"(
        mov #5, r4
        add #3, r4
    )");
    auto suite = cli::resolvePrograms({asmfile.string()});
    ASSERT_EQ(suite.size(), 1u);
    EXPECT_EQ(suite[0].name, "standalone");

    peak::BatchOptions opts;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rep.ok) << rep.programs[0].error;
    EXPECT_GT(rep.programs[0].peakPowerW, 0.0);
}

TEST(Cli, CsvShape)
{
    auto suite = cli::resolvePrograms({"intAVG"});
    peak::BatchOptions opts;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    std::string csv = cli::toCsv(rep);
    // Header + one row.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    EXPECT_NE(csv.find("name,scenario,ok,cached"), std::string::npos);
    EXPECT_NE(csv.find("\"intAVG\",\"unconstrained\",1,0"),
              std::string::npos);
}

} // namespace
} // namespace ulpeak
