/**
 * @file
 * The per-cycle peak power envelope and its windowed peak-energy
 * curves -- the profile-shaped deliverable of the paper (as opposed
 * to the single scalar peak): env[c] bounds the power any input can
 * draw at cycle c, and E_w[c] bounds the energy any input can draw in
 * the W-cycle window ending at cycle c. Supply sizing against the
 * envelope (sizing::sizeEnvelopeSupply) replaces guardband-style
 * point-peak provisioning with profile-driven harvester + decap
 * sizing.
 *
 * The envelope is an elementwise maximum over execution-tree walks
 * (sym::ExecTree::envelopePowerW), so it is deterministic --
 * byte-identical across numThreads, EvalMode, and batch worker
 * counts; the windowed curves are derived from it by a sequential
 * double-precision prefix sum, preserving that determinism.
 */

#ifndef ULPEAK_PEAK_ENVELOPE_HH
#define ULPEAK_PEAK_ENVELOPE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpeak {
namespace peak {

/** Cycle-aligned upper-bound power profile of one program (or the
 *  max-composition of a whole suite). */
struct Envelope {
    bool present = false;      ///< recorded by the analysis?
    std::vector<float> powerW; ///< env[c], c counted from reset

    /** Window lengths [cycles] of the peak-energy curves. */
    std::vector<unsigned> windows;
    /**
     * windowEnergyJ[w][c]: upper bound on the energy drawn in the
     * windows[w]-cycle window ending at cycle c (truncated at cycle 0
     * for c < W-1). Derived from powerW, so max-composition and cache
     * round-trips recompute it instead of storing it.
     */
    std::vector<std::vector<float>> windowEnergyJ;
    /** max over c of windowEnergyJ[w][c] -- the decap-sizing number
     *  per window. */
    std::vector<double> peakWindowEnergyJ;

    /** Envelope peak [W] (equals the scalar peakPowerW bound). */
    double peakPowerW() const;

    size_t cycles() const { return powerW.size(); }
};

/** The default window set (1 / 10 / 100 cycles). */
const std::vector<unsigned> &defaultEnvelopeWindows();

/**
 * (Re)compute @p env's windowed peak-energy curves from its powerW at
 * @p tclk_s seconds per cycle, for @p env's window set. Deterministic:
 * a sequential double prefix sum, truncated windows at the front.
 */
void buildWindowCurves(Envelope &env, double tclk_s);

/**
 * buildWindowCurves under a repeating per-cycle clock schedule:
 * cycle c contributes powerW[c] * tclk_by_phase[c % period] joules
 * (operating-mode schedules, where each phase runs at its mode's
 * clock -- scenario::Scenario::phaseTclkS). The prefix sum runs over
 * per-cycle energies instead of powers, so the scalar overload stays
 * bit-identical for existing callers while mode schedules get exact
 * per-phase accounting. Throws std::invalid_argument on an empty
 * schedule.
 */
void buildWindowCurves(Envelope &env,
                       const std::vector<double> &tclk_by_phase);

/**
 * Elementwise max-composition of the power traces: the envelope that
 * bounds every program of a suite (shorter envelopes are zero-padded
 * conceptually). @p acc adopts @p other's window set when it has
 * none yet. Window curves are NOT touched -- call buildWindowCurves
 * once after the last composition (rebuilding per compose would be
 * O(programs * cycles * windows) of discarded work).
 */
void maxComposeEnvelope(Envelope &acc, const Envelope &other);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_ENVELOPE_HH
