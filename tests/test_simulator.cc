/**
 * @file
 * Tests of the cycle-based simulator: value propagation, X handling,
 * the paper's activity definition (Section 3.1), per-cycle energies
 * and snapshot/restore.
 */

#include <gtest/gtest.h>

#include "hw/builder.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace {

using hw::Builder;
using hw::Bus;

TEST(Simulator, CombPropagation)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig c = b.input("c");
    hw::Sig o = b.and2(b.inv(a), c);
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) {
        s.setInput(a, V4::Zero);
        s.setInput(c, V4::One);
    });
    EXPECT_EQ(sim.value(o), V4::One);
    sim.step([&](Simulator &s) {
        s.setInput(a, V4::One);
        s.setInput(c, V4::One);
    });
    EXPECT_EQ(sim.value(o), V4::Zero);
}

TEST(Simulator, SequentialDelaysOneCycle)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus q = b.reg(Bus{a}, "q");
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    EXPECT_EQ(sim.value(q[0]), V4::One) << "captured previous cycle";
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    EXPECT_EQ(sim.value(q[0]), V4::Zero);
}

TEST(Simulator, ActivityChangedGateIsActive)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig o = b.inv(a);
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_TRUE(sim.isActive(o));
    EXPECT_GT(sim.actualEnergyJ(), 0.0);
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_FALSE(sim.isActive(o));
    EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), 0.0);
}

TEST(Simulator, StableXIsInactive)
{
    // Paper 3.1: a gate is active if it toggles OR is X and driven by
    // an active gate. A gate whose X fanins are stable must be idle.
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig x = b.input("x");
    hw::Sig gate1 = b.inv(x);
    hw::Sig toggler = b.input("t");
    hw::Sig mixed = b.and2(gate1, toggler);
    nl.finalize();

    Simulator sim(nl);
    auto drive = [&](V4 t) {
        return [&, t](Simulator &s) {
            s.setInput(x, V4::X);
            s.setInput(toggler, t);
        };
    };
    sim.step(drive(V4::One));
    sim.step(drive(V4::One));
    sim.step(drive(V4::One));
    // x held X: the primary input itself stays conservative-active,
    // but gate1 (X, no changing fanin... except the input rule) --
    // inputs count as potentially toggling, so check the deeper gate
    // under a concrete blocker instead:
    sim.step(drive(V4::Zero));
    sim.step(drive(V4::Zero));
    EXPECT_EQ(sim.value(mixed), V4::Zero);
    EXPECT_FALSE(sim.isActive(mixed)) << "0-blocked gate is idle";
}

TEST(Simulator, BoundEnergyCoversXToggles)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig o = b.inv(a);
    (void)o;
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::X); });
    // X assignment assumes the max-power consistent transition.
    EXPECT_GT(sim.boundEnergyJ(), 0.0);
    EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), 0.0)
        << "no concrete toggle happened";
}

TEST(Simulator, BoundEqualsActualWhenConcrete)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    Bus a = b.busInput(8, "a");
    Bus n = b.busNot(a);
    Bus q = b.reg(n, "q");
    (void)q;
    nl.finalize();

    Simulator sim(nl);
    uint32_t pattern = 0x5a;
    for (int i = 0; i < 8; ++i) {
        sim.step([&](Simulator &s) {
            for (unsigned j = 0; j < 8; ++j)
                s.setInput(a[j], fromBool((pattern >> j) & 1));
        });
        // The first cycles resolve the power-on X state (registers
        // start unknown, Algorithm 1 line 2); once concrete, the
        // bound must equal the actual energy exactly.
        if (i >= 2)
            EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), sim.boundEnergyJ());
        pattern = (pattern * 37 + 11) & 0xff;
    }
}

TEST(Simulator, ModuleEnergySplit)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    b.pushModule("m1");
    hw::Sig o1 = b.inv(a);
    b.popModule();
    b.pushModule("m2");
    hw::Sig o2 = b.inv(a);
    hw::Sig o3 = b.inv(o2);
    b.popModule();
    (void)o1;
    (void)o3;
    ModuleId m1 = nl.findModule("m1");
    ModuleId m2 = nl.findModule("m2");
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    const auto &split = sim.moduleBoundEnergyJ();
    EXPECT_GT(split[m1], 0.0);
    EXPECT_GT(split[m2], split[m1]) << "m2 has two toggling gates";
    double total = 0.0;
    for (double e : split)
        total += e;
    EXPECT_NEAR(total, sim.boundEnergyJ(), 1e-21);
}

TEST(Simulator, SnapshotRestoreRoundTrip)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus cnt = b.busWireDecl(4, "cnt");
    Bus q = b.reg(hw::addConst(b, cnt, 1), "q");
    b.busWireConnect(cnt, q);
    (void)a;
    nl.finalize();

    Simulator sim(nl);
    auto drv = [&](Simulator &s) { s.setInput(a, V4::Zero); };
    // Counter starts X; force it by snapshot surgery: run a few
    // cycles, grab the state, keep running, then restore and check
    // deterministic continuation.
    for (int i = 0; i < 3; ++i)
        sim.step(drv);
    Simulator::Snapshot snap = sim.snapshot();
    uint64_t h0 = sim.hashSeqState();
    sim.step(drv);
    sim.step(drv);
    EXPECT_NE(sim.cycle(), snap.cycle);
    sim.restore(snap);
    EXPECT_EQ(sim.cycle(), snap.cycle);
    EXPECT_EQ(sim.hashSeqState(), h0);
}

TEST(Simulator, HashDiffersForDifferentState)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus q = b.reg(Bus{a, a}, "q");
    (void)q;
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    uint64_t h0 = sim.hashSeqState();
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_NE(sim.hashSeqState(), h0);
}

} // namespace
} // namespace ulpeak
