/**
 * @file
 * Packed fault runner: 64 faulted executions per PackedSimulator
 * sweep, each lane locksteping against its own ISS instance. The
 * control flow mirrors cosim::run statement for statement so every
 * classification field is bit-identical to 64 scalar runFaulted calls
 * (the packed lane-identity invariant extended through the checker):
 *
 *  - per-lane behavioral memory and store-stream observation reuse
 *    power::packedMemHook / packedMemEdge, with finished lanes
 *    masked out exactly where the scalar loop would have stopped
 *    stepping;
 *  - the FETCH detection is a plane-wise evaluation of
 *    System::fsmState's exactly-one-hot-concrete rule;
 *  - a lane that diverges or halts is *finished*: its checking stops,
 *    its memory freezes, no further injection lands -- while the
 *    remaining lanes keep sweeping.
 *
 * Divergence detail/disassembly strings are not built here (the
 * FaultResult::report contract); replay one lane through the scalar
 * runner to get the full report.
 */

#include "fault/fault.hh"

#include "power/packed_run.hh"

namespace ulpeak {
namespace fault {

namespace {

constexpr unsigned kLanes = PackedSimulator::kLanes;

/** Mask of lanes whose FSM is exactly-one-hot concrete at FETCH --
 *  the plane-wise mirror of System::fsmState(sim) == kStFetch. */
uint64_t
fetchMask(const PackedSimulator &s, const msp::CpuHandles &h)
{
    uint64_t known_all = ~uint64_t(0);
    uint64_t ones_fetch = 0;
    uint64_t ones_other = 0;
    for (unsigned st = 0; st < msp::kNumStates; ++st) {
        V64 v = s.value(h.state[st]);
        known_all &= v.k;
        if (st == msp::kStFetch)
            ones_fetch = v.v;
        else
            ones_other |= v.v;
    }
    return ones_fetch & ~ones_other & known_all;
}

} // namespace

std::array<FaultResult, PackedSimulator::kLanes>
runFaultedPacked(msp::System &sys, const isa::Image &image,
                 const std::array<std::vector<Injection>,
                                  PackedSimulator::kLanes> &faults,
                 const RunOptions &opts)
{
    const msp::CpuHandles &h = sys.handles();

    sys.memory().reset();
    sys.loadImage(image);
    std::vector<Memory> mem(kLanes, sys.memory());

    std::array<FaultResult, kLanes> res;

    // Per-lane checker state (the locals of cosim::run, one per lane).
    uint64_t finished_mask = 0;
    uint64_t halted_mask = 0;
    uint64_t fault_mask = 0;
    std::array<std::vector<cosim::MemWrite>, kLanes> gateWrites;
    std::array<std::vector<cosim::MemWrite>, kLanes> issWrites;
    std::array<bool, kLanes> gateXWrite{};
    std::array<uint32_t, kLanes> curPc{};
    std::array<bool, kLanes> first{};
    std::array<bool, kLanes> issDone{};
    std::array<std::vector<float>, kLanes> traceW;
    first.fill(true);

    std::vector<isa::Iss> iss(kLanes);
    for (unsigned l = 0; l < kLanes; ++l) {
        iss[l].loadImage(image);
        iss[l].setPortIn(opts.portIn);
        std::vector<cosim::MemWrite> *w = &issWrites[l];
        iss[l].setWriteObserver([w](uint32_t a, uint16_t v) {
            if (a < isa::SystemMap::kRomBase)
                w->push_back({a, uint16_t(v)});
        });
        iss[l].reset();
        curPc[l] = iss[l].pc();
    }

    PackedSimulator psim(sys.netlist());
    psim.setHookFn(h.memHookId, [&](PackedSimulator &s) {
        power::packedMemHook(s, h, mem);
    });
    // Same edge order as the scalar path: the memory commit
    // (System::attach) precedes the store-stream observer
    // (cosim::run). Finished lanes are masked out of both -- their
    // scalar counterpart stopped stepping -- but merely *halted* lanes
    // still feed the observer, so the halting store itself is
    // observed exactly as in the scalar run.
    psim.addEdgeFn([&](PackedSimulator &s) {
        power::packedMemEdge(s, h, mem, halted_mask, fault_mask,
                             /*skip_mask=*/finished_mask);
    });
    psim.addEdgeFn([&](PackedSimulator &s) {
        V64 rstn = s.value(h.rstn);
        V64 wr = s.value(h.mbWr);
        uint64_t consider = ~finished_mask;
        while (consider) {
            unsigned l = unsigned(__builtin_ctzll(consider));
            consider &= consider - 1;
            if (rstn.lane(l) != V4::One)
                continue;
            V4 w = wr.lane(l);
            if (w == V4::Zero)
                continue;
            Word16 addr = s.readBusLane(h.mab, l);
            Word16 data = s.readBusLane(h.mdbOut, l);
            if (w == V4::X || !addr.isFullyKnown() ||
                !data.isFullyKnown()) {
                gateXWrite[l] = true;
                continue;
            }
            if (addr.value < isa::SystemMap::kRomBase)
                gateWrites[l].push_back({addr.value, data.value});
        }
    });

    auto applyInjections = [&](PackedSimulator &s) {
        for (unsigned l = 0; l < kLanes; ++l) {
            if ((finished_mask >> l) & 1)
                continue;
            for (const Injection &inj : faults[l]) {
                if (inj.cycle != s.cycle())
                    continue;
                if (inj.site.kind == SiteKind::Flop)
                    res[l].applied |=
                        s.injectSeuFlip(inj.site.gate,
                                        uint64_t(1) << l) != 0;
                else
                    res[l].applied |=
                        mem[l].flipBit(inj.site.addr, inj.site.bit);
            }
        }
    };

    // Lane divergence: the fields diverge() fills in cosim::run, minus
    // the detail/disasm strings. Finishes the lane.
    auto laneDiverge = [&](unsigned l, cosim::Divergence::Kind kind,
                           uint64_t cycle, uint32_t pc) {
        res[l].kind = kind;
        res[l].divergenceCycle = cycle;
        res[l].instrIndex = res[l].instructionsRetired;
        res[l].pc = pc;
        res[l].gateCycles = cycle;
        res[l].outcome =
            kind == cosim::Divergence::Kind::GateTimeout
                ? Outcome::Hang
                : (kind == cosim::Divergence::Kind::GateX
                       ? Outcome::Crash
                       : Outcome::Sdc);
        finished_mask |= uint64_t(1) << l;
    };

    // compareWrites(pc) per lane; returns false after diverging.
    auto compareWritesLane = [&](unsigned l, uint32_t pc) {
        if (gateWrites[l] == issWrites[l] && !gateXWrite[l])
            return true;
        laneDiverge(l, cosim::Divergence::Kind::MemWrite, psim.cycle(),
                    pc);
        return false;
    };

    // The post-halt epilogue of cosim::run (the GateTimeout branch
    // cannot apply: the lane halted).
    auto finalizeHalted = [&](unsigned l) {
        res[l].gateCycles = psim.cycle();
        if (!compareWritesLane(l, curPc[l]))
            return;
        if (!iss[l].halted()) {
            laneDiverge(l, cosim::Divergence::Kind::Halt, psim.cycle(),
                        curPc[l]);
            return;
        }
        if (psim.cycle() != iss[l].cycles()) {
            laneDiverge(l, cosim::Divergence::Kind::Cycles,
                        psim.cycle(), curPc[l]);
            return;
        }
        const Memory &m = mem[l];
        for (uint32_t a = m.ramBase(); a < m.ramBase() + m.ramSize();
             a += 2) {
            Word16 w = m.read(a);
            if (!w.isFullyKnown())
                continue;
            if (w.value != iss[l].readMem(a)) {
                laneDiverge(l, cosim::Divergence::Kind::FinalMemory,
                            psim.cycle(), curPc[l]);
                return;
            }
        }
        res[l].outcome = Outcome::Masked;
        finished_mask |= uint64_t(1) << l;
    };

    // Reset sequence (System::reset with the injection pre-cycle).
    for (unsigned i = 0; i < msp::System::kResetCycles; ++i) {
        psim.step([&](PackedSimulator &s) {
            s.setInput(h.rstn, V64::splat(V4::Zero));
            s.setInput(h.irq, V64::splat(V4::Zero));
            s.setInputBusAll(h.portIn, Word16::allX());
            applyInjections(s);
        });
    }

    while (finished_mask != ~uint64_t(0) &&
           psim.cycle() < opts.maxCycles) {
        uint64_t stepping = ~finished_mask; // scalar loop entrants
        psim.step([&](PackedSimulator &s) {
            s.setInput(h.rstn, V64::splat(V4::One));
            s.setInput(h.irq, V64::splat(V4::Zero));
            s.setInputBusAll(h.portIn, Word16::known(opts.portIn));
            applyInjections(s);
        });
        uint64_t fetch = fetchMask(psim, h);
        while (stepping) {
            unsigned l = unsigned(__builtin_ctzll(stepping));
            uint64_t bit = uint64_t(1) << l;
            stepping &= stepping - 1;
            if (opts.powerCtx)
                traceW[l].push_back(float(opts.powerCtx->cyclePowerW(
                    psim.boundEnergyJ(l))));
            if (halted_mask & bit) {
                finalizeHalted(l);
                continue;
            }
            if (fault_mask & bit) {
                laneDiverge(l, cosim::Divergence::Kind::GateX,
                            psim.cycle(), curPc[l]);
                continue;
            }
            if (!(fetch & bit))
                continue;

            // ---- Instruction boundary (cosim::run, per lane) ----
            uint32_t prevPc = curPc[l];
            if (!first[l]) {
                if (!compareWritesLane(l, prevPc))
                    continue;
                gateWrites[l].clear();
                issWrites[l].clear();
            }
            Word16 pcw = psim.readBusLane(h.pc, l);
            if (!pcw.isFullyKnown()) {
                laneDiverge(l, cosim::Divergence::Kind::GateX,
                            psim.cycle(), prevPc);
                continue;
            }
            if (issDone[l]) {
                laneDiverge(l, cosim::Divergence::Kind::Halt,
                            psim.cycle(), pcw.value);
                continue;
            }
            if (pcw.value != iss[l].pc()) {
                laneDiverge(l, cosim::Divergence::Kind::Pc,
                            psim.cycle(), prevPc);
                continue;
            }
            {
                bool regDiff = false;
                for (unsigned r = 1; r < 16; ++r) {
                    Word16 w = psim.readBusLane(h.regs[r], l);
                    if (!w.isFullyKnown())
                        continue;
                    if (w.value != iss[l].reg(r)) {
                        regDiff = true;
                        break;
                    }
                }
                if (regDiff) {
                    laneDiverge(l, cosim::Divergence::Kind::Register,
                                psim.cycle(), prevPc);
                    continue;
                }
            }
            curPc[l] = pcw.value;
            ++res[l].instructionsRetired;
            first[l] = false;
            if (!iss[l].step()) {
                if (!iss[l].halted()) {
                    laneDiverge(l, cosim::Divergence::Kind::IssTrap,
                                psim.cycle(), curPc[l]);
                    continue;
                }
                issDone[l] = true;
            }
        }
    }

    // Budget exhausted: every still-running lane is a hang.
    uint64_t running = ~finished_mask;
    while (running) {
        unsigned l = unsigned(__builtin_ctzll(running));
        running &= running - 1;
        laneDiverge(l, cosim::Divergence::Kind::GateTimeout,
                    psim.cycle(), curPc[l]);
    }

    if (opts.powerCtx)
        for (unsigned l = 0; l < kLanes; ++l)
            applyPowerTrace(res[l], traceW[l], opts.envelope);
    return res;
}

} // namespace fault
} // namespace ulpeak
