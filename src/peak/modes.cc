#include "peak/modes.hh"

#include <cstdio>

#include "sizing/sizing.hh"

namespace ulpeak {
namespace peak {

namespace {

std::string
formatFinding(const scenario::OperatingMode &m, double lib_vdd)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "mode \"%s\" runs at %.3g V, at or below the decap "
                  "sizing floor vmin = %.3g V (%.0f%% of the %.3g V "
                  "nominal rail); a nominal-rail decap has no "
                  "discharge headroom down to this mode -- size the "
                  "decap against the mode's own rail",
                  m.name.c_str(), m.vdd,
                  sizing::kDecapVminRatio * lib_vdd,
                  sizing::kDecapVminRatio * 100.0, lib_vdd);
    return buf;
}

} // namespace

ModeReport
buildModeReport(const Envelope &env, const scenario::Scenario &scen,
                double lib_vdd)
{
    ModeReport rep;
    if (!scen.hasModes() || !env.present)
        return rep;
    rep.present = true;
    rep.envelopeCycles = env.powerW.size();
    rep.compositePeakW = env.peakPowerW();

    const uint64_t period = scen.modePeriod();

    // Per-mode slices: one sequential pass keeps the double
    // accumulation order fixed (determinism contract).
    rep.modes.resize(scen.modes.size());
    for (size_t m = 0; m < scen.modes.size(); ++m) {
        rep.modes[m].name = scen.modes[m].name;
        rep.modes[m].vdd = scen.modes[m].vdd;
        rep.modes[m].freqHz = scen.modes[m].freqHz;
    }
    std::vector<double> sum(scen.modes.size(), 0.0);
    for (size_t c = 0; c < env.powerW.size(); ++c) {
        ModeSlice &s = rep.modes[scen.modeIndexAt(c)];
        double w = env.powerW[c];
        if (s.cycles == 0 || w > s.peakW) {
            s.peakW = w;
            s.peakCycle = c;
        }
        ++s.cycles;
        sum[scen.modeIndexAt(c)] += w;
        s.energyJ += w / scen.modeAt(c).freqHz;
    }
    for (size_t m = 0; m < rep.modes.size(); ++m)
        if (rep.modes[m].cycles)
            rep.modes[m].avgW = sum[m] / double(rep.modes[m].cycles);

    // Distinct switches of the repeating schedule: phase p is an
    // entry into its mode when the previous phase (cyclically) ran a
    // different mode. A static schedule (period 1, or all entries
    // equal) has no transitions.
    for (uint64_t p = 0; p < period; ++p) {
        uint32_t to = scen.modeIndexAt(p);
        uint32_t from = scen.modeIndexAt((p + period - 1) % period);
        if (to == from)
            continue;
        ModeTransition tr;
        tr.from = scen.modes[from].name;
        tr.to = scen.modes[to].name;
        tr.phase = p;
        for (const scenario::ModeAssertion &a : scen.assertions)
            if (a.mode == tr.to && a.settleCycles > tr.settleCycles)
                tr.settleCycles = a.settleCycles;
        uint64_t window = tr.settleCycles ? tr.settleCycles : 1;
        // Entry cycles congruent to p mod period. Cycle 0 only
        // counts when the schedule actually switches into phase 0
        // from the (cyclic) last phase, i.e. never on the very first
        // cycle -- there is no "from" mode before reset ends; start
        // the scan at the first full occurrence instead.
        for (uint64_t c = p == 0 ? period : p; c < env.powerW.size();
             c += period) {
            ++tr.occurrences;
            double entry = env.powerW[c];
            if (entry > tr.peakEntryW)
                tr.peakEntryW = entry;
            uint64_t end = c + window;
            if (end > env.powerW.size())
                end = env.powerW.size();
            for (uint64_t k = c; k < end; ++k)
                if (double(env.powerW[k]) > tr.peakSettleW)
                    tr.peakSettleW = env.powerW[k];
        }
        rep.transitions.push_back(std::move(tr));
    }

    // Assertions: walk the envelope tracking cycles-since-entry into
    // the current mode; a cycle is checked when it runs the asserted
    // mode outside the settling window after the last switch into it.
    for (const scenario::ModeAssertion &a : scen.assertions) {
        ModeAssertionResult res;
        res.assertion = a;
        uint64_t sinceEntry = 0;
        for (size_t c = 0; c < env.powerW.size(); ++c) {
            uint32_t mi = scen.modeIndexAt(c);
            if (c == 0 || mi != scen.modeIndexAt(c - 1))
                sinceEntry = 0;
            else
                ++sinceEntry;
            if (scen.modes[mi].name != a.mode)
                continue;
            if (sinceEntry < a.settleCycles)
                continue;
            ++res.checkedCycles;
            double w = env.powerW[c];
            if (w > a.maxPowerW) {
                if (res.violations == 0)
                    res.firstViolationCycle = c;
                ++res.violations;
                if (w - a.maxPowerW > res.maxExcessW)
                    res.maxExcessW = w - a.maxPowerW;
                res.pass = false;
            }
        }
        rep.assertions.push_back(std::move(res));
    }

    // The low-vdd decap guard (see sizing::decapFarads): a mode at
    // or below the nominal rail's droop floor would make the decap
    // model's (vdd^2 - vmin^2) headroom non-positive.
    for (const scenario::OperatingMode &m : scen.modes)
        if (m.vdd <= sizing::kDecapVminRatio * lib_vdd)
            rep.findings.push_back(formatFinding(m, lib_vdd));

    return rep;
}

} // namespace peak
} // namespace ulpeak
