/**
 * @file
 * Golden-model (ISS) tests: arithmetic/flag semantics, addressing
 * modes, stack operations, the hardware multiplier, halt and cycle
 * accounting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/iss.hh"

namespace ulpeak {
namespace isa {
namespace {

Iss
runProgram(const std::string &body, uint64_t max_instrs = 10000)
{
    std::string src = ".org 0xf800\nstart:\n" + body + R"(
        mov #1, &0x01f0
        .org 0xfffe
        .word start
    )";
    Iss iss;
    iss.loadImage(assemble(src));
    iss.reset();
    EXPECT_TRUE(iss.run(max_instrs)) << iss.haltReason();
    return iss;
}

TEST(Iss, MovAndArithmetic)
{
    Iss iss = runProgram(R"(
        mov #100, r4
        mov #23, r5
        add r5, r4
        sub #3, r5
    )");
    EXPECT_EQ(iss.reg(4), 123);
    EXPECT_EQ(iss.reg(5), 20);
}

TEST(Iss, CarryAndOverflowFlags)
{
    Iss iss = runProgram(R"(
        mov #0xffff, r4
        add #1, r4          ; -> 0, C=1, Z=1
        mov sr, r6
        mov #0x7fff, r4
        add #1, r4          ; -> 0x8000, V=1, N=1
        mov sr, r7
    )");
    EXPECT_TRUE(iss.reg(6) & (1 << kFlagC));
    EXPECT_TRUE(iss.reg(6) & (1 << kFlagZ));
    EXPECT_TRUE(iss.reg(7) & (1 << kFlagV));
    EXPECT_TRUE(iss.reg(7) & (1 << kFlagN));
    EXPECT_FALSE(iss.reg(7) & (1 << kFlagC));
}

TEST(Iss, SubtractionBorrowSemantics)
{
    Iss iss = runProgram(R"(
        mov #5, r4
        sub #3, r4          ; 2, C=1 (no borrow)
        mov sr, r6
        mov #3, r4
        sub #5, r4          ; -2, C=0 (borrow)
        mov sr, r7
    )");
    EXPECT_EQ(iss.reg(4), 0xfffe);
    EXPECT_TRUE(iss.reg(6) & (1 << kFlagC));
    EXPECT_FALSE(iss.reg(7) & (1 << kFlagC));
}

TEST(Iss, ConditionalJumps)
{
    Iss iss = runProgram(R"(
        mov #3, r4
        mov #0, r5
loop:
        add r4, r5
        dec r4
        jnz loop
    )");
    EXPECT_EQ(iss.reg(5), 6);
    EXPECT_EQ(iss.reg(4), 0);
}

TEST(Iss, SignedComparisons)
{
    Iss iss = runProgram(R"(
        mov #0xfffe, r4     ; -2
        cmp #1, r4          ; -2 < 1 signed
        mov #0, r5
        jge notless
        mov #1, r5
notless:
    )");
    EXPECT_EQ(iss.reg(5), 1);
}

TEST(Iss, MemoryAndAddressingModes)
{
    Iss iss = runProgram(R"(
        mov #0x0300, r4
        mov #0x1111, 0(r4)
        mov #0x2222, 2(r4)
        mov @r4+, r5
        mov @r4, r6
        add 0(r4), r5
        mov #0x0300, r7
        mov r6, &0x0310
    )");
    EXPECT_EQ(iss.reg(5), 0x3333);
    EXPECT_EQ(iss.reg(6), 0x2222);
    EXPECT_EQ(iss.reg(4), 0x0302);
    EXPECT_EQ(iss.readMem(0x0310), 0x2222);
}

TEST(Iss, StackPushPopCallRet)
{
    Iss iss = runProgram(R"(
        mov #0x0a00, sp
        mov #0x1234, r4
        push r4
        mov #0, r4
        pop r5
        call #func
        jmp after
func:
        mov #77, r6
        ret
after:
        mov sp, r7
    )");
    EXPECT_EQ(iss.reg(5), 0x1234);
    EXPECT_EQ(iss.reg(6), 77);
    EXPECT_EQ(iss.reg(7), 0x0a00);
}

TEST(Iss, ShiftsAndByteOps)
{
    Iss iss = runProgram(R"(
        mov #0x8003, r4
        rra r4              ; arithmetic: 0xc001
        mov #0x0001, r5
        setc
        rrc r5              ; 0x8000, C=1
        mov sr, r8
        mov #0x1234, r6
        swpb r6             ; 0x3412
        mov #0x0080, r7
        sxt r7              ; 0xff80
    )");
    EXPECT_EQ(iss.reg(4), 0xc001);
    EXPECT_EQ(iss.reg(5), 0x8000);
    EXPECT_TRUE(iss.reg(8) & (1 << kFlagC));
    EXPECT_EQ(iss.reg(6), 0x3412);
    EXPECT_EQ(iss.reg(7), 0xff80);
}

TEST(Iss, HardwareMultiplier)
{
    Iss iss = runProgram(R"(
        mov #1234, &0x0130  ; MPY
        mov #5678, &0x0138  ; OP2 triggers
        mov &0x013a, r4     ; RESLO
        mov &0x013c, r5     ; RESHI
    )");
    uint32_t product = 1234u * 5678u;
    EXPECT_EQ(iss.reg(4), uint16_t(product));
    EXPECT_EQ(iss.reg(5), uint16_t(product >> 16));
}

TEST(Iss, WatchdogPasswordProtected)
{
    Iss iss = runProgram(R"(
        mov #0x5a80, &0x0120
        mov &0x0120, r4     ; reads 0x6980
        mov #0x1280, &0x0120 ; wrong password, ignored
        mov &0x0120, r5
    )");
    EXPECT_EQ(iss.reg(4), 0x6980);
    EXPECT_EQ(iss.reg(5), 0x6980);
}

TEST(Iss, PortInOut)
{
    Iss iss;
    iss.loadImage(assemble(R"(
        .org 0xf800
start:
        mov &0x0020, r4
        mov r4, &0x0022
        mov #1, &0x01f0
        .org 0xfffe
        .word start
    )"));
    iss.setPortIn(0xbeef);
    iss.reset();
    EXPECT_TRUE(iss.run(100));
    EXPECT_EQ(iss.reg(4), 0xbeef);
    EXPECT_EQ(iss.portOut(), 0xbeef);
}

TEST(Iss, CycleAccounting)
{
    Iss iss = runProgram(R"(
        mov r4, r5          ; 2
        mov #300, r5        ; 3
        mov &0x0300, r5     ; 4
        nop                 ; 2
    )");
    // + final mov #1,&DONE (srcConst=1 via CG, dstExt, dstWr) = 4
    // + reset/halt-commit constant = 4
    EXPECT_EQ(iss.cycles(), 8u + 2 + 3 + 4 + 2 + 4);
    EXPECT_EQ(iss.instructions(), 5u);
}

TEST(Iss, ExplicitSrWriteWins)
{
    Iss iss = runProgram(R"(
        mov #0xffff, r4
        add #1, r4          ; sets C and Z
        mov #0, sr          ; explicit clear must win
        mov sr, r5
    )");
    EXPECT_EQ(iss.reg(5), 0);
}

TEST(Iss, InvalidInstructionHalts)
{
    Iss iss;
    iss.loadImage(assemble(R"(
        .org 0xf800
start:
        .word 0xa405        ; DADD: unsupported
        .org 0xfffe
        .word start
    )"));
    iss.reset();
    EXPECT_FALSE(iss.run(10));
    EXPECT_NE(iss.haltReason().find("invalid"), std::string::npos);
}

} // namespace
} // namespace isa
} // namespace ulpeak
