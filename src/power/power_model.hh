/**
 * @file
 * Power-analysis context: converts the simulator's per-cycle switching
 * energies into power numbers at an operating point, adding the static
 * per-cycle components (clock tree and leakage) -- the PrimeTime role
 * in the paper's flow.
 */

#ifndef ULPEAK_POWER_POWER_MODEL_HH
#define ULPEAK_POWER_POWER_MODEL_HH

#include <vector>

#include "netlist/netlist.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace power {

class PowerContext {
  public:
    /**
     * @param nl     finalized netlist
     * @param freq   clock frequency [Hz] (paper: 100 MHz for the
     *               openMSP430 evaluation, 8 MHz for the F1610
     *               measurements)
     */
    PowerContext(const Netlist &nl, double freq);

    double freqHz() const { return freq_; }
    double tclkS() const { return 1.0 / freq_; }

    /** Clock + leakage energy paid every cycle regardless of
     *  activity [J]. */
    double staticEnergyPerCycleJ() const { return staticPerCycle_; }

    /** Power of one cycle given its switching energy [W]. */
    double
    cyclePowerW(double switching_j) const
    {
        return (switching_j + staticPerCycle_) * freq_;
    }

    /**
     * Power of one cycle run in an operating mode: the cycle energy
     * (switching + the reference static lump) scaled by the mode's
     * voltage factor @p energy_scale
     * (CellLibrary::energyScale(mode.vdd)), times the mode clock
     * @p freq_hz. The static lump stays the calibrated per-cycle
     * energy at this context's reference clock and scales only with
     * vdd^2 -- a deliberate simplification (leakW * tclk_mode would
     * *grow* per-cycle energy as the clock slows, breaking the
     * mode-dominance guarantee the fuzzer pins). With scale 1 and
     * this context's own frequency it reproduces cyclePowerW
     * bit-for-bit.
     */
    double
    cyclePowerW(double switching_j, double energy_scale,
                double freq_hz) const
    {
        return (switching_j + staticPerCycle_) * energy_scale *
               freq_hz;
    }

    /** Mode-scaled energy of one cycle [J] (frequency-free form of
     *  the mode cyclePowerW overload; power = this * freq_hz). */
    double
    cycleEnergyJ(double switching_j, double energy_scale) const
    {
        return (switching_j + staticPerCycle_) * energy_scale;
    }

    /** Bound power of the cycle most recently stepped on @p sim. */
    double
    cycleBoundPowerW(const Simulator &sim) const
    {
        return cyclePowerW(sim.boundEnergyJ());
    }

    /** Mode-scaled bound power of the last cycle on @p sim. */
    double
    cycleBoundPowerW(const Simulator &sim, double energy_scale,
                     double freq_hz) const
    {
        return cyclePowerW(sim.boundEnergyJ(), energy_scale, freq_hz);
    }
    /** Concrete-transition power of the last cycle. */
    double
    cycleActualPowerW(const Simulator &sim) const
    {
        return cyclePowerW(sim.actualEnergyJ());
    }

    /**
     * Per-top-level-module power split of the last cycle (bound
     * assignment), including each module's share of clock and leakage.
     * Indexed by ModuleId (only direct children of top are nonzero,
     * plus index 0 for unattributed top-level gates).
     */
    std::vector<double> cycleModulePowerW(const Simulator &sim) const;
    /** Same split from an explicit per-module switching vector (e.g.
     *  one PackedSimulator lane); identical arithmetic per entry. */
    std::vector<double>
    cycleModulePowerW(const std::vector<double> &switching_j) const;

    const Netlist &netlist() const { return *nl_; }
    /** Static (clock+leak) per-cycle energy of one module [J]. */
    double
    moduleStaticEnergyJ(ModuleId m) const
    {
        return moduleStatic_[m];
    }

  private:
    const Netlist *nl_;
    double freq_;
    double staticPerCycle_;
    std::vector<double> moduleStatic_;
};

/** Running statistics over a power trace. */
struct TraceStats {
    double peakW = 0.0;
    double sumW = 0.0;
    uint64_t cycles = 0;
    uint64_t peakCycle = 0;

    void
    add(double w)
    {
        if (w > peakW) {
            peakW = w;
            peakCycle = cycles;
        }
        sumW += w;
        ++cycles;
    }

    double avgW() const { return cycles ? sumW / cycles : 0.0; }
    /** Total energy at @p tclk seconds per cycle [J]. */
    double energyJ(double tclk) const { return sumW * tclk; }
};

} // namespace power
} // namespace ulpeak

#endif // ULPEAK_POWER_POWER_MODEL_HH
