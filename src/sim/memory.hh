/**
 * @file
 * Behavioral three-valued memory.
 *
 * Program and data memory are RAM macros, not standard cells, both in
 * the paper's placed-and-routed openMSP430 and here. The Memory class
 * stores 16-bit words with a per-bit X mask. Algorithm 1 line 2
 * ("initialize all memory cells ... to X") corresponds to reset():
 * everything not loaded from the binary reads back X.
 *
 * The address space follows the MSP430 convention used by src/msp:
 * peripherals live below 0x0200 (handled by the system, not by Memory),
 * RAM at [ramBase, ramBase + ramSize), ROM (program + interrupt vectors)
 * at [romBase, 0x10000). Word-aligned access only: the ULP core performs
 * word operations (byte mode is out of scope, see DESIGN.md).
 */

#ifndef ULPEAK_SIM_MEMORY_HH
#define ULPEAK_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "logic/v4.hh"

namespace ulpeak {

class Memory {
  public:
    Memory(uint32_t ram_base, uint32_t ram_size, uint32_t rom_base);

    /** Set all RAM bits to X; ROM keeps its loaded image. */
    void reset();

    /** Load a concrete image (e.g. the application binary) into ROM. */
    void loadRom(uint32_t addr, const std::vector<uint16_t> &words);
    /** Load concrete words into RAM (e.g. initialized data). */
    void loadRam(uint32_t addr, const std::vector<uint16_t> &words);

    /**
     * Read the word containing @p addr (bit 0 ignored). Unmapped
     * addresses read all-X, like floating bus lines.
     */
    Word16 read(uint32_t addr) const;

    /** Write a word; ROM and unmapped writes are ignored. */
    void write(uint32_t addr, Word16 w);

    /** Store a fully-X word at a RAM address (marks an input buffer). */
    void poisonRam(uint32_t addr, uint32_t words);

    /**
     * Flip one stored RAM bit (a single-event upset in the RAM macro).
     * No-op returning false when @p addr is outside RAM or the bit is
     * X -- an upset of a bit with no defined value has no defined
     * effect, and the three-valued model already covers it.
     */
    bool flipBit(uint32_t addr, unsigned bit);

    bool
    inRam(uint32_t addr) const
    {
        return addr >= ramBase_ && addr < ramBase_ + ramSize_;
    }
    bool
    inRom(uint32_t addr) const
    {
        return addr >= romBase_ && addr < 0x10000;
    }

    uint32_t ramBase() const { return ramBase_; }
    uint32_t ramSize() const { return ramSize_; }
    uint32_t romBase() const { return romBase_; }

    /** Mix the RAM contents into @p h (FNV-1a) for state dedup. */
    void hashInto(uint64_t &h) const;

    /// @name Snapshot / restore for execution-tree forking
    /// @{
    struct Snapshot {
        std::vector<uint16_t> ramVal;
        std::vector<uint16_t> ramX;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);
    /// @}

  private:
    uint32_t ramBase_, ramSize_, romBase_;
    std::vector<uint16_t> ramVal_, ramX_;
    std::vector<uint16_t> rom_;
};

} // namespace ulpeak

#endif // ULPEAK_SIM_MEMORY_HH
