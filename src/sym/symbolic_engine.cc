#include "sym/symbolic_engine.hh"

#include <unordered_map>

#include "isa/disassembler.hh"
#include "isa/encoding.hh"

namespace ulpeak {
namespace sym {

namespace {

/** One un-processed execution path (Algorithm 1's stack U entry). */
struct Pending {
    Simulator::Snapshot simSnap;
    msp::System::Snapshot sysSnap;
    uint32_t node;
    uint32_t forcedPc;     ///< PC constraint applied on the next step
    uint32_t lastKnownPc;  ///< last concrete PC value on this path
    uint32_t curInstrAddr; ///< instruction in execute/mem (COI)
    uint64_t pathCycles;
};

} // namespace

SymbolicEngine::SymbolicEngine(msp::System &sys,
                               const SymbolicConfig &cfg)
    : sys_(&sys), cfg_(cfg)
{
}

SymbolicResult
SymbolicEngine::run(const isa::Image &image)
{
    SymbolicResult res;
    msp::System &sys = *sys_;
    const Netlist &nl = sys.netlist();
    const msp::CpuHandles &h = sys.handles();
    power::PowerContext ctx(nl, cfg_.freqHz);

    // Algorithm 1 lines 2-5: everything X, load binary, reset.
    sys.memory().reset();
    sys.loadImage(image);
    sys.clearHalted();
    Simulator sim(nl);
    sys.attach(sim);
    sys.reset(sim);

    if (cfg_.recordActiveSets)
        res.everActive.assign(nl.numGates(), 0);

    constexpr uint32_t kNoForcedPc = UINT32_MAX;
    std::vector<Pending> stack;
    std::unordered_map<uint64_t, uint32_t> visited;

    uint32_t root = res.tree.newNode(kNoNode);
    stack.push_back(Pending{sim.snapshot(), sys.snapshot(), root,
                            kNoForcedPc, 0, 0, 0});

    auto fail = [&](const std::string &msg) {
        res.ok = false;
        res.error = msg;
        return res;
    };

    // Hash of (sequential state with PC forced) + memory + target.
    auto stateKey = [&](uint32_t target_pc) {
        uint64_t hash = sim.hashSeqState();
        sys.memory().hashInto(hash);
        hash ^= 0x9e3779b97f4a7c15ull * (uint64_t(target_pc) + 1);
        return hash;
    };

    while (!stack.empty()) {
        Pending p = std::move(stack.back());
        stack.pop_back();
        sim.restore(p.simSnap);
        sys.restore(p.sysSnap);
        ++res.pathsExplored;

        uint32_t nodeId = p.node;
        uint32_t forcedPc = p.forcedPc;
        uint32_t lastPc = p.lastKnownPc;
        uint32_t curInstr = p.curInstrAddr;
        uint64_t pathCycles = p.pathCycles;

        while (true) {
            if (res.totalCycles >= cfg_.maxTotalCycles)
                return fail("symbolic cycle budget exhausted");
            if (pathCycles >= cfg_.maxPathCycles)
                return fail("path exceeded maxPathCycles (missing "
                            "halt or unbounded loop?)");

            uint32_t applyPc = forcedPc;
            forcedPc = kNoForcedPc;
            sim.step([&](Simulator &s) {
                sys.driveCycle(s, Word16::allX());
                if (applyPc != kNoForcedPc) {
                    // Algorithm 1's update_PC_next: constrain only the
                    // PC flops, right after the edge, before fetch
                    // logic evaluates.
                    s.forceBus(h.pc, Word16::known(uint16_t(applyPc)));
                }
            });
            ++res.totalCycles;
            ++pathCycles;

            Word16 pcNow = sys.readPc(sim);
            if (pcNow.isFullyKnown())
                lastPc = pcNow.value;
            else
                return fail("PC became X without fork interception");
            int fsm = sys.fsmState(sim);
            if (fsm == msp::kStFetch)
                curInstr = lastPc; // the word under fetch

            // ---- Per-cycle Algorithm 2 assignment ----
            TreeNode &node = res.tree.node(nodeId);
            double w = ctx.cycleBoundPowerW(sim);
            node.powerW.push_back(float(w));
            if (cfg_.recordModuleTrace) {
                std::vector<double> mod = ctx.cycleModulePowerW(sim);
                node.modulePowerW.emplace_back(mod.begin(), mod.end());
                CycleInfo info;
                info.instrPc = curInstr;
                info.fsmState = uint8_t(fsm < 0 ? 255 : fsm);
                node.cycleInfo.push_back(info);
            }
            if (cfg_.recordActiveSets) {
                for (GateId g : sim.activeGates())
                    res.everActive[g] = 1;
            }
            if (w > res.peakPowerW) {
                res.peakPowerW = w;
                res.peakNode = nodeId;
                res.peakCycleInNode = uint32_t(node.powerW.size() - 1);
                if (cfg_.recordActiveSets)
                    res.peakActive.assign(sim.activeGates().begin(),
                                          sim.activeGates().end());
            }

            if (sys.xStoreFault())
                return fail("store with unknown address or enable "
                            "(X-store); see DESIGN.md section 5");

            if (sys.halted()) {
                res.tree.node(nodeId).endsHalted = true;
                break; // leaf: end of this execution path
            }
            if (fsm == msp::kStHalt)
                return fail("core trapped (invalid instruction) at "
                            "pc~0x" + std::to_string(lastPc));

            // ---- Algorithm 1 line 17: will PC_next be X? ----
            bool pcNextX = false;
            for (GateId g : h.pc) {
                if (sim.predictSeqValue(g) == V4::X) {
                    pcNextX = true;
                    break;
                }
            }
            if (!pcNextX)
                continue;

            // Resolve feasible targets from the (concrete) IR.
            Word16 ir = sys.readIr(sim);
            if (!ir.isFullyKnown())
                return fail("X program counter with unknown IR");
            isa::Decoded dec = isa::decode(ir.value, 0, 0);
            if (!dec.valid || !isa::isJump(dec.instr.op))
                return fail(
                    "unresolvable X program counter (op " +
                    std::string(isa::opName(dec.instr.op)) +
                    "): indirect jump through unknown data");

            // At EXEC of a jump the PC holds the fall-through address.
            uint32_t fallThrough = lastPc;
            uint32_t taken =
                (lastPc +
                 uint32_t(int32_t(dec.instr.jumpOffsetWords) * 2)) &
                0xffff;
            TreeNode &forkNode = res.tree.node(nodeId);
            forkNode.branchPc = (lastPc - 2) & 0xffff;

            uint32_t targets[2] = {taken, fallThrough};
            unsigned numTargets = taken == fallThrough ? 1 : 2;
            for (unsigned t = 0; t < numTargets; ++t) {
                uint64_t key = stateKey(targets[t]);
                auto it = visited.find(key);
                if (it != visited.end()) {
                    // Algorithm 1 line 19: already simulated; merge.
                    res.tree.node(nodeId).edges.push_back(
                        TreeEdge{targets[t], it->second, true});
                    ++res.dedupMerges;
                    continue;
                }
                if (res.tree.numNodes() >= cfg_.maxNodes)
                    return fail("execution tree node budget "
                                "exhausted");
                uint32_t child = res.tree.newNode(nodeId);
                visited.emplace(key, child);
                res.tree.node(nodeId).edges.push_back(
                    TreeEdge{targets[t], child, false});
                stack.push_back(Pending{sim.snapshot(), sys.snapshot(),
                                        child, targets[t], lastPc,
                                        curInstr, pathCycles});
            }
            break; // this path's continuation lives on the stack
        }
    }

    // ---- Section 3.3: peak energy over the tree ----
    try {
        PathEnergy pe = res.tree.maxPathEnergy(
            ctx.tclkS(), cfg_.inputDependentLoopBound);
        res.peakEnergyJ = pe.energyJ;
        res.maxPathCycles = pe.cycles;
        res.npeJPerCycle =
            pe.cycles ? pe.energyJ / double(pe.cycles) : 0.0;
    } catch (const std::exception &e) {
        return fail(e.what());
    }

    res.ok = true;
    return res;
}

} // namespace sym
} // namespace ulpeak
