#include "peak/batch.hh"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "msp/cpu.hh"

namespace ulpeak {
namespace peak {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// @name FNV-1a hashing over heterogeneous fields
/// @{
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
hashBytes(uint64_t &h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hashU64(uint64_t &h, uint64_t v)
{
    hashBytes(h, &v, sizeof v);
}

void
hashDouble(uint64_t &h, double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    hashU64(h, bits);
}

void
hashString(uint64_t &h, const std::string &s)
{
    hashU64(h, s.size());
    hashBytes(h, s.data(), s.size());
}
/// @}

/// @name Disk cache: one small text file per key
/// @{
// Format-version header. v2 added the envelope fields; v3 made the
// deployment scenario part of the key (a v2 entry was implicitly
// "unconstrained", so letting it satisfy a constrained lookup -- or
// the other way around -- would serve numbers from the wrong
// environment); v4 added operating-mode (DVFS) schedules to the
// scenario hash -- a v3 binary knows nothing about modes, so its
// entries must never satisfy a mode-scheduled lookup even if the
// rest of the scenario hashes equal. The version participates both
// in the cache key (stale files are simply never addressed) and in
// the content check below (a key collision or a hand-copied entry
// from an older binary is rejected as a miss instead of
// deserializing into a garbage report).
constexpr const char *kCacheMagic = "ulpeak-cache-v4";

std::string
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, bits);
    return buf;
}

double
bitsDouble(const std::string &s, bool &ok)
{
    uint64_t bits = 0;
    if (std::sscanf(s.c_str(), "%" SCNx64, &bits) != 1) {
        ok = false;
        return 0.0;
    }
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
}

std::string
floatBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    char buf[12];
    std::snprintf(buf, sizeof buf, "%08x", bits);
    return buf;
}

/** Parse @p n floats from @p s (8 hex digits each, concatenated). */
bool
bitsFloats(const std::string &s, size_t n, std::vector<float> &out)
{
    if (s.size() != n * 8)
        return false;
    out.resize(n);
    for (size_t i = 0; i < n; ++i) {
        uint32_t bits = 0;
        for (size_t d = 0; d < 8; ++d) {
            char c = s[i * 8 + d];
            uint32_t v;
            if (c >= '0' && c <= '9')
                v = uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                v = uint32_t(c - 'a' + 10);
            else
                return false;
            bits = bits << 4 | v;
        }
        std::memcpy(&out[i], &bits, sizeof bits);
    }
    return true;
}

fs::path
cachePath(const std::string &dir, uint64_t key)
{
    char name[32];
    std::snprintf(name, sizeof name, "%016" PRIx64 ".txt", key);
    return fs::path(dir) / name;
}

/** Load a cached result into @p r; false on miss or a malformed /
 *  truncated entry (treated as a miss and overwritten). When
 *  @p expect_envelope, an entry without the envelope payload is a
 *  miss; window curves are rebuilt by the caller. */
bool
loadCached(const fs::path &path, ProgramResult &r,
           bool expect_envelope)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    if (!std::getline(in, magic) || magic != kCacheMagic)
        return false;
    bool ok = true;
    auto parseU64 = [&ok](const std::string &s) -> uint64_t {
        char *end = nullptr;
        uint64_t v = std::strtoull(s.c_str(), &end, 10);
        if (s.empty() || !end || *end != '\0')
            ok = false;
        return v;
    };
    unsigned seen = 0; // bitmask: each field must appear exactly once
    auto mark = [&](unsigned bit) {
        if (seen & (1u << bit))
            ok = false;
        seen |= 1u << bit;
    };
    uint64_t envCycles = 0;
    std::string envBits;
    std::string k, v;
    while (in >> k >> v) {
        if (k == "peak_power_w_bits") {
            r.peakPowerW = bitsDouble(v, ok);
            mark(0);
        } else if (k == "peak_energy_j_bits") {
            r.peakEnergyJ = bitsDouble(v, ok);
            mark(1);
        } else if (k == "npe_j_per_cycle_bits") {
            r.npeJPerCycle = bitsDouble(v, ok);
            mark(2);
        } else if (k == "max_path_cycles") {
            r.maxPathCycles = parseU64(v);
            mark(3);
        } else if (k == "total_cycles") {
            r.totalCycles = parseU64(v);
            mark(4);
        } else if (k == "paths_explored") {
            r.pathsExplored = uint32_t(parseU64(v));
            mark(5);
        } else if (k == "dedup_merges") {
            r.dedupMerges = uint32_t(parseU64(v));
            mark(6);
        } else if (k == "envelope_cycles") {
            envCycles = parseU64(v);
            mark(7);
        } else if (k == "envelope_w_bits") {
            envBits = v;
            mark(8);
        }
        // Unknown keys are ignored (forward compatibility).
    }
    unsigned required = expect_envelope
                            ? (envCycles ? 0x1ffu : 0xffu)
                            : 0x7fu;
    if (!ok || seen != required)
        return false;
    if (expect_envelope) {
        r.envelope.present = true;
        if (!bitsFloats(envBits, size_t(envCycles),
                        r.envelope.powerW))
            return false;
    }
    r.ok = true;
    return true;
}

/** Atomically persist a successful result (tmp + rename). */
void
storeCached(const fs::path &path, const ProgramResult &r)
{
    std::ostringstream tmpname;
    tmpname << path.filename().string() << ".tmp."
            << std::hash<std::thread::id>{}(
                   std::this_thread::get_id());
    fs::path tmp = path.parent_path() / tmpname.str();
    {
        std::ofstream out(tmp);
        if (!out)
            return; // cache is best-effort; analysis result stands
        out << kCacheMagic << "\n"
            << "peak_power_w_bits " << doubleBits(r.peakPowerW) << "\n"
            << "peak_energy_j_bits " << doubleBits(r.peakEnergyJ)
            << "\n"
            << "npe_j_per_cycle_bits " << doubleBits(r.npeJPerCycle)
            << "\n"
            << "max_path_cycles " << r.maxPathCycles << "\n"
            << "total_cycles " << r.totalCycles << "\n"
            << "paths_explored " << r.pathsExplored << "\n"
            << "dedup_merges " << r.dedupMerges << "\n";
        if (r.envelope.present) {
            out << "envelope_cycles " << r.envelope.powerW.size()
                << "\n";
            if (!r.envelope.powerW.empty()) {
                out << "envelope_w_bits ";
                for (float f : r.envelope.powerW)
                    out << floatBits(f);
                out << "\n";
            }
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}
/// @}

void
copyScalars(ProgramResult &r, Report &full)
{
    r.ok = full.ok;
    r.error = full.error;
    r.peakPowerW = full.peakPowerW;
    r.peakEnergyJ = full.peakEnergyJ;
    r.npeJPerCycle = full.npeJPerCycle;
    r.maxPathCycles = full.maxPathCycles;
    r.totalCycles = full.totalCycles;
    r.pathsExplored = full.pathsExplored;
    r.dedupMerges = full.dedupMerges;
    r.steals = full.steals;
    r.snapshotBytesCopied = full.snapshotBytesCopied;
    r.snapshotBytesFull = full.snapshotBytesFull;
    r.perWorkerCycles = std::move(full.perWorkerCycles);
    r.packedBatches = full.packedBatches;
    r.packedSweeps = full.packedSweeps;
    r.packedLaneCycles = full.packedLaneCycles;
    r.envelope = std::move(full.envelope);
}

} // namespace

uint64_t
cacheKey(const CellLibrary &lib, const isa::Image &image,
         const Options &opts)
{
    uint64_t h = kFnvOffset;
    hashString(h, kCacheMagic);
    // The library participates by *content*, not just name: editing a
    // calibration constant must invalidate every cached entry.
    hashString(h, lib.name());
    hashDouble(h, lib.vdd());
    hashDouble(h, lib.wireCapPerFanoutF());
    for (size_t k = 0; k < kNumCellKinds; ++k) {
        const CellParams &p = lib.params(CellKind(k));
        hashDouble(h, p.inputCapF);
        hashDouble(h, p.riseEnergyJ);
        hashDouble(h, p.fallEnergyJ);
        hashDouble(h, p.leakageW);
        hashDouble(h, p.areaUm2);
        hashDouble(h, p.clkPinEnergyJ);
    }
    // Result-affecting options only; numThreads, evalMode,
    // snapshotMode, staticPrune and packedExplore are excluded on
    // purpose (scheduling-independent exploration, bit-identical
    // kernels, fork representations, prune masks and the packed
    // frontier), as are recordActiveSets
    // and recordModuleTrace (never cached).
    // recordEnvelope and the window set participate: they change
    // what a cached entry must contain. The scenario participates by
    // content (not name): it changes every number.
    hashDouble(h, opts.freqHz);
    hashU64(h, opts.maxTotalCycles);
    hashU64(h, opts.inputDependentLoopBound);
    opts.scenario.hashInto(h);
    hashU64(h, opts.recordEnvelope ? 1 : 0);
    if (opts.recordEnvelope) {
        hashU64(h, opts.envelopeWindows.size());
        for (unsigned w : opts.envelopeWindows)
            hashU64(h, w);
    }
    // Image contents: flattened (address, word) pairs.
    auto words = image.flatten();
    hashU64(h, words.size());
    for (const auto &[addr, word] : words) {
        hashU64(h, addr);
        hashU64(h, word);
    }
    return h;
}

BatchReport
analyzeBatch(const CellLibrary &lib,
             const std::vector<BatchProgram> &programs,
             const BatchOptions &opts)
{
    Clock::time_point suite0 = Clock::now();

    BatchReport rep;
    // The work list is the scenario x program matrix, scenario-major
    // (a single implicit scenario reproduces the old flat suite).
    std::vector<scenario::Scenario> scens = opts.scenarios;
    if (scens.empty())
        scens.push_back(opts.analysis.scenario);
    const size_t nProg = programs.size();
    const size_t nItems = scens.size() * nProg;

    rep.programs.resize(nItems);
    std::vector<Options> scenOpts(scens.size(), opts.analysis);
    for (size_t s = 0; s < scens.size(); ++s) {
        scenOpts[s].scenario = scens[s];
        for (size_t p = 0; p < nProg; ++p) {
            rep.programs[s * nProg + p].name = programs[p].name;
            rep.programs[s * nProg + p].scenario = scens[s].name;
        }
    }

    const bool useCache = !opts.cacheDir.empty();
    if (useCache)
        fs::create_directories(opts.cacheDir);

    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    std::atomic<unsigned> hits{0}, misses{0};

    auto workerFn = [&]() {
        // Each worker elaborates at most one private System, lazily:
        // a fully-warm suite never pays for netlist construction.
        std::unique_ptr<msp::System> sys;
        for (;;) {
            if (opts.failFast && abort.load())
                break;
            size_t i = next.fetch_add(1);
            if (i >= nItems)
                break;
            const Options &aopts = scenOpts[i / nProg];
            const BatchProgram &prog = programs[i % nProg];
            ProgramResult &r = rep.programs[i];
            Clock::time_point t0 = Clock::now();

            fs::path entry;
            if (useCache) {
                entry = cachePath(opts.cacheDir,
                                  cacheKey(lib, prog.image, aopts));
                if (loadCached(entry, r, aopts.recordEnvelope)) {
                    if (r.envelope.present) {
                        // Window curves are derived data: rebuild
                        // them from the cached trace exactly as the
                        // cold path built them.
                        r.envelope.windows = aopts.envelopeWindows;
                        if (aopts.scenario.hasModes())
                            buildWindowCurves(
                                r.envelope,
                                aopts.scenario.phaseTclkS());
                        else
                            buildWindowCurves(r.envelope,
                                              1.0 / aopts.freqHz);
                    }
                    r.cached = true;
                    ++hits;
                    r.wallSeconds = secondsSince(t0);
                    continue;
                }
                ++misses;
            }

            try {
                if (!sys)
                    sys = std::make_unique<msp::System>(lib);
                Report full = analyze(*sys, prog.image, aopts);
                copyScalars(r, full);
            } catch (const std::exception &e) {
                r.ok = false;
                r.error = e.what();
            }
            if (r.ok && useCache)
                storeCached(entry, r);
            if (!r.ok && opts.failFast)
                abort.store(true);
            r.wallSeconds = secondsSince(t0);
        }
    };

    unsigned jobs = opts.jobs < 1 ? 1 : opts.jobs;
    if (jobs > nItems)
        jobs = unsigned(nItems ? nItems : 1);
    if (jobs <= 1) {
        workerFn();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t + 1 < jobs; ++t)
            pool.emplace_back(workerFn);
        workerFn();
        for (std::thread &t : pool)
            t.join();
    }

    rep.cacheHits = hits.load();
    rep.cacheMisses = misses.load();

    rep.ok = nItems > 0;
    for (ProgramResult &r : rep.programs) {
        if (!r.ok) {
            rep.ok = false;
            if (r.error.empty())
                r.error = "skipped (fail-fast after earlier failure)";
        }
    }

    // Per-scenario aggregates; the top-level fields mirror the first
    // scenario so single-scenario callers see the familiar report.
    rep.scenarios.resize(scens.size());
    for (size_t s = 0; s < scens.size(); ++s) {
        ScenarioSummary &sum = rep.scenarios[s];
        sum.scenario = scens[s].name;
        sum.summary = scens[s].summary();
        sum.ok = nProg > 0;
        bool anyOk = false;
        for (size_t p = 0; p < nProg; ++p) {
            const ProgramResult &r = rep.programs[s * nProg + p];
            if (!r.ok) {
                sum.ok = false;
                continue;
            }
            anyOk = true;
            if (r.peakPowerW > sum.maxPeakPowerW) {
                sum.maxPeakPowerW = r.peakPowerW;
                sum.maxPeakPowerProgram = r.name;
            }
            if (r.peakEnergyJ > sum.maxPeakEnergyJ) {
                sum.maxPeakEnergyJ = r.peakEnergyJ;
                sum.maxPeakEnergyProgram = r.name;
            }
            if (r.npeJPerCycle > sum.maxNpeJPerCycle) {
                sum.maxNpeJPerCycle = r.npeJPerCycle;
                sum.maxNpeProgram = r.name;
            }
        }
        if (anyOk)
            sum.supply = sizing::sizeSuiteSupply(sum.maxPeakPowerW,
                                                 sum.maxPeakEnergyJ);

        // Suite envelope: elementwise max of the scenario's
        // per-program envelopes, composed in input order (max is
        // order-independent, so any order would produce the same
        // bytes), then sized.
        if (opts.analysis.recordEnvelope && anyOk) {
            double tclk = 1.0 / opts.analysis.freqHz;
            // Under a mode schedule the cycles run at per-phase
            // clocks: the curves use the exact per-phase periods,
            // and the sizing's sustained-rate conversion uses the
            // schedule-mean period (energy per cycle over seconds
            // per cycle, averaged over one period).
            std::vector<double> phaseTclk;
            if (scens[s].hasModes()) {
                phaseTclk = scens[s].phaseTclkS();
                double acc = 0.0;
                for (double t : phaseTclk)
                    acc += t;
                tclk = acc / double(phaseTclk.size());
            }
            sum.suiteEnvelope.windows =
                opts.analysis.envelopeWindows;
            for (size_t p = 0; p < nProg; ++p) {
                const ProgramResult &r = rep.programs[s * nProg + p];
                if (r.ok)
                    maxComposeEnvelope(sum.suiteEnvelope, r.envelope);
            }
            if (sum.suiteEnvelope.present) {
                if (phaseTclk.empty())
                    buildWindowCurves(sum.suiteEnvelope, tclk);
                else
                    buildWindowCurves(sum.suiteEnvelope, phaseTclk);
                sum.envelopeSupply = sizing::sizeEnvelopeSupply(
                    sum.suiteEnvelope.windows,
                    sum.suiteEnvelope.peakWindowEnergyJ,
                    sum.suiteEnvelope.peakPowerW(), tclk, lib.vdd());
            }
        }
    }
    if (!rep.scenarios.empty()) {
        const ScenarioSummary &first = rep.scenarios.front();
        rep.maxPeakPowerW = first.maxPeakPowerW;
        rep.maxPeakPowerProgram = first.maxPeakPowerProgram;
        rep.maxPeakEnergyJ = first.maxPeakEnergyJ;
        rep.maxPeakEnergyProgram = first.maxPeakEnergyProgram;
        rep.maxNpeJPerCycle = first.maxNpeJPerCycle;
        rep.maxNpeProgram = first.maxNpeProgram;
        rep.supply = first.supply;
        rep.suiteEnvelope = first.suiteEnvelope;
        rep.envelopeSupply = first.envelopeSupply;
    }
    rep.wallSeconds = secondsSince(suite0);
    return rep;
}

} // namespace peak
} // namespace ulpeak
