#include "isa/disassembler.hh"

#include <sstream>

namespace ulpeak {
namespace isa {

Decoded
decodeAt(uint32_t addr, const FetchFn &fetch)
{
    uint16_t w0 = fetch(addr);
    uint16_t w1 = fetch(addr + 2);
    uint16_t w2 = fetch(addr + 4);
    return decode(w0, w1, w2);
}

std::string
disassemble(uint32_t addr, const FetchFn &fetch)
{
    Decoded d = decodeAt(addr, fetch);
    if (!d.valid)
        return "<invalid>";
    if (isJump(d.instr.op)) {
        uint32_t target =
            (addr + 2 + uint32_t(int32_t(d.instr.jumpOffsetWords) * 2)) &
            0xffff;
        std::ostringstream os;
        os << opName(d.instr.op) << " 0x" << std::hex << target;
        return os.str();
    }
    return d.instr.toString();
}

} // namespace isa
} // namespace ulpeak
