/**
 * @file
 * Public entry point for application-specific, input-independent peak
 * power and energy analysis -- the tool the paper describes: given an
 * application binary and the processor netlist, return guaranteed
 * peak power and energy requirements valid for every input.
 *
 * Quickstart:
 * @code
 *   msp::System sys(CellLibrary::tsmc65Like());
 *   isa::Image app = isa::assemble(source);
 *   peak::Report r = peak::analyze(sys, app, peak::Options{});
 *   // r.peakPowerW, r.peakEnergyJ, r.npeJPerCycle
 * @endcode
 *
 * For whole application suites (sharded workers, disk cache, suite
 * aggregates) see peak::analyzeBatch in peak/batch.hh and the
 * `ulpeak` CLI built on it.
 */

#ifndef ULPEAK_PEAK_PEAK_ANALYSIS_HH
#define ULPEAK_PEAK_PEAK_ANALYSIS_HH

#include <string>
#include <vector>

#include "peak/envelope.hh"
#include "sym/symbolic_engine.hh"

namespace ulpeak {
namespace peak {

struct Options {
    double freqHz = 100e6;
    bool recordActiveSets = false;
    bool recordModuleTrace = false;
    unsigned inputDependentLoopBound = 0;
    uint64_t maxTotalCycles = 3000000;
    /** Simulation kernel; both modes produce bit-identical reports
     *  (enforced by tests/test_benchmarks.cc across bench430). */
    EvalMode evalMode = EvalMode::EventDriven;
    /** Parallel execution-tree exploration workers (<= 1: serial). */
    unsigned numThreads = 1;
    /** Record the per-cycle peak power envelope and windowed
     *  peak-energy curves (Report::envelope). Byte-identical across
     *  numThreads and evalMode. */
    bool recordEnvelope = false;
    /** Window lengths [cycles] of the envelope's peak-energy curves;
     *  used only when recordEnvelope. */
    std::vector<unsigned> envelopeWindows = defaultEnvelopeWindows();
    /** The deployment scenario analyzed under (port/memory/register
     *  constraints; default unconstrained = the classic all-X flow).
     *  Participates in the batch cache key by content. Constraining
     *  it can only tighten every reported bound
     *  (fuzz::scenarioDominanceCheck). */
    scenario::Scenario scenario;
    /** Fork snapshot representation inside the exploration (delta =
     *  default, full = reference); never changes a reported number,
     *  so it is excluded from the cache key like evalMode. */
    sym::SnapshotMode snapshotMode = sym::SnapshotMode::Delta;
    /** Static constant-cone pruning (SymbolicConfig::staticPrune,
     *  `ulpeak --static-prune`): skip gates lint::analyzeConstants
     *  proves constant under the scenario. Never changes a reported
     *  number (fuzz property 9), so it is excluded from the cache
     *  key like evalMode and snapshotMode. */
    bool staticPrune = false;
    /** Packed 64-lane frontier exploration
     *  (SymbolicConfig::packedExplore, `ulpeak --packed-explore`):
     *  drain pending paths through the bit-parallel kernel, up to 64
     *  per sweep. Never changes a reported number (fuzz
     *  `--mode packed-sym`), so it is excluded from the cache key
     *  like evalMode and snapshotMode. */
    bool packedExplore = false;
};

/** Application-specific input-independent requirements (the paper's
 *  "X-based" numbers). */
struct Report {
    bool ok = false;
    std::string error;

    double peakPowerW = 0.0;    ///< Figure 5.1's X-based bars
    double peakEnergyJ = 0.0;   ///< Section 3.3 bound
    double npeJPerCycle = 0.0;  ///< Figure 5.2's X-based bars
    uint64_t maxPathCycles = 0;

    /** Flattened per-cycle peak power trace (Figure 3.3). */
    std::vector<float> flatTraceW;

    /** Cycle-aligned peak power envelope + windowed peak-energy
     *  curves, when Options::recordEnvelope. */
    Envelope envelope;

    /** Gates that can ever toggle / gates active at the peak cycle
     *  (Figures 1.5 and 3.4), when Options::recordActiveSets. */
    std::vector<uint8_t> everActive;
    std::vector<uint32_t> peakActive;

    /** Exploration statistics (see SymbolicResult: steals and
     *  perWorkerCycles are scheduling-dependent and excluded from
     *  determinism comparisons, like timings). */
    uint64_t totalCycles = 0;
    uint32_t pathsExplored = 0;
    uint32_t dedupMerges = 0;
    uint32_t steals = 0;
    uint64_t snapshotBytesCopied = 0;
    uint64_t snapshotBytesFull = 0;
    std::vector<uint64_t> perWorkerCycles;
    /** Packed-frontier scheduling counters (zero unless
     *  Options::packedExplore; scheduling-dependent, like steals). */
    uint64_t packedBatches = 0;
    uint64_t packedSweeps = 0;
    uint64_t packedLaneCycles = 0;

    /** Full result (execution tree etc.) for advanced consumers. */
    sym::SymbolicResult sym;
};

/** Run the full analysis of Chapter 3 on @p image. */
Report analyze(msp::System &sys, const isa::Image &image,
               const Options &opts);

/** Count active gates per top-level module (activity-map figures). */
std::vector<std::pair<std::string, size_t>>
activeGatesPerModule(const Netlist &nl,
                     const std::vector<uint32_t> &gates);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_PEAK_ANALYSIS_HH
