/**
 * @file
 * Peak-bound explorer: visualize how the X-based per-cycle bound
 * (Section 3.2) envelopes concrete input-based traces (the paper's
 * Figure 3.5), directly in the terminal, for any benchmark.
 *
 *   $ ./examples/peak_bound_explorer [benchmark-name] [input-sets]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench430/benchmarks.hh"
#include "peak/peak_analysis.hh"
#include "peak/validation.hh"
#include "power/analysis.hh"

using namespace ulpeak;

namespace {

/** Render a power trace as a one-line ASCII sparkline. */
std::string
sparkline(const std::vector<float> &trace, double lo, double hi,
          size_t width)
{
    static const char *levels = " .:-=+*#%@";
    std::string out;
    if (trace.empty())
        return out;
    for (size_t col = 0; col < width; ++col) {
        size_t a = col * trace.size() / width;
        size_t b = std::max(a + 1, (col + 1) * trace.size() / width);
        double peak = 0.0;
        for (size_t i = a; i < b && i < trace.size(); ++i)
            peak = std::max(peak, double(trace[i]));
        double t = (peak - lo) / (hi - lo);
        t = std::clamp(t, 0.0, 0.999);
        out.push_back(levels[size_t(t * 10)]);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mult";
    unsigned nInputs = argc > 2 ? unsigned(std::atoi(argv[2])) : 3;

    msp::System sys(CellLibrary::tsmc65Like());
    const bench430::Benchmark &b = bench430::benchmarkByName(name);
    isa::Image img = b.assembleImage();
    power::PowerContext ctx(sys.netlist(), 100e6);

    peak::Options opts;
    peak::Report x = peak::analyze(sys, img, opts);
    if (!x.ok) {
        std::printf("analysis failed: %s\n", x.error.c_str());
        return 1;
    }

    double lo = ctx.cyclePowerW(0.0) * 0.95;
    double hi = x.peakPowerW;
    size_t width = 72;
    std::printf("%s: X-based bound (top) vs %u input-based traces, "
                "%.2f..%.2f mW\n\n",
                name.c_str(), nInputs, lo * 1e3, hi * 1e3);
    std::printf("X-bound |%s| peak %.3f mW\n",
                sparkline(x.flatTraceW, lo, hi, width).c_str(),
                x.peakPowerW * 1e3);

    unsigned idx = 0;
    double bestObserved = 0.0;
    for (const auto &in : b.makeInputs(nInputs, 2024)) {
        power::ConcreteRunOptions copts;
        copts.portIn = in.portIn;
        auto run = power::runConcrete(sys, img, ctx, copts, in.ram);
        auto v = peak::validateTraceBound(x.flatTraceW, run.traceW);
        bestObserved = std::max(bestObserved, run.stats.peakW);
        std::printf("input %u |%s| peak %.3f mW%s\n", idx++,
                    sparkline(run.traceW, lo, hi, width).c_str(),
                    run.stats.peakW * 1e3,
                    v.bounds ? "" : "  (diverged after a fork)");
    }

    std::printf("\nguaranteed bound is %.1f%% above the best observed "
                "peak (paper Fig 3.5: the X trace closely tracks and "
                "always bounds the measured one)\n",
                100.0 * (x.peakPowerW / bestObserved - 1.0));
    return 0;
}
