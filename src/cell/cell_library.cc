#include "cell/cell_library.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ulpeak {

bool
isSequential(CellKind k)
{
    switch (k) {
      case CellKind::Dff:
      case CellKind::Dffe:
      case CellKind::Dffr:
      case CellKind::Dffre:
        return true;
      default:
        return false;
    }
}

unsigned
cellFaninCount(CellKind k)
{
    switch (k) {
      case CellKind::Const0:
      case CellKind::Const1:
      case CellKind::Input:
        return 0;
      case CellKind::Buf:
      case CellKind::Inv:
      case CellKind::Dff:
        return 1;
      case CellKind::And2:
      case CellKind::Or2:
      case CellKind::Nand2:
      case CellKind::Nor2:
      case CellKind::Xor2:
      case CellKind::Xnor2:
      case CellKind::Dffe:
      case CellKind::Dffr:
        return 2;
      case CellKind::And3:
      case CellKind::Or3:
      case CellKind::Nand3:
      case CellKind::Nor3:
      case CellKind::Mux2:
      case CellKind::Aoi21:
      case CellKind::Oai21:
      case CellKind::Dffre:
        return 3;
      case CellKind::And4:
      case CellKind::Or4:
      case CellKind::Nand4:
      case CellKind::Nor4:
      case CellKind::Aoi22:
      case CellKind::Oai22:
        return 4;
      default:
        return 0;
    }
}

const char *
cellName(CellKind k)
{
    switch (k) {
      case CellKind::Const0: return "TIELO";
      case CellKind::Const1: return "TIEHI";
      case CellKind::Input: return "PORT_IN";
      case CellKind::Buf: return "BUF_X1";
      case CellKind::Inv: return "INV_X1";
      case CellKind::And2: return "AND2_X1";
      case CellKind::And3: return "AND3_X1";
      case CellKind::And4: return "AND4_X1";
      case CellKind::Or2: return "OR2_X1";
      case CellKind::Or3: return "OR3_X1";
      case CellKind::Or4: return "OR4_X1";
      case CellKind::Nand2: return "NAND2_X1";
      case CellKind::Nand3: return "NAND3_X1";
      case CellKind::Nand4: return "NAND4_X1";
      case CellKind::Nor2: return "NOR2_X1";
      case CellKind::Nor3: return "NOR3_X1";
      case CellKind::Nor4: return "NOR4_X1";
      case CellKind::Xor2: return "XOR2_X1";
      case CellKind::Xnor2: return "XNOR2_X1";
      case CellKind::Mux2: return "MUX2_X1";
      case CellKind::Aoi21: return "AOI21_X1";
      case CellKind::Oai21: return "OAI21_X1";
      case CellKind::Aoi22: return "AOI22_X1";
      case CellKind::Oai22: return "OAI22_X1";
      case CellKind::Dff: return "DFF_X1";
      case CellKind::Dffe: return "DFFE_X1";
      case CellKind::Dffr: return "DFFR_X1";
      case CellKind::Dffre: return "DFFRE_X1";
      default: return "UNKNOWN";
    }
}

V4
evalCell(CellKind k, const V4 *in)
{
    switch (k) {
      case CellKind::Const0:
        return V4::Zero;
      case CellKind::Const1:
        return V4::One;
      case CellKind::Buf:
        return in[0];
      case CellKind::Inv:
        return v4Not(in[0]);
      case CellKind::And2:
        return v4And(in[0], in[1]);
      case CellKind::And3:
        return v4And(v4And(in[0], in[1]), in[2]);
      case CellKind::And4:
        return v4And(v4And(in[0], in[1]), v4And(in[2], in[3]));
      case CellKind::Or2:
        return v4Or(in[0], in[1]);
      case CellKind::Or3:
        return v4Or(v4Or(in[0], in[1]), in[2]);
      case CellKind::Or4:
        return v4Or(v4Or(in[0], in[1]), v4Or(in[2], in[3]));
      case CellKind::Nand2:
        return v4Not(v4And(in[0], in[1]));
      case CellKind::Nand3:
        return v4Not(v4And(v4And(in[0], in[1]), in[2]));
      case CellKind::Nand4:
        return v4Not(v4And(v4And(in[0], in[1]), v4And(in[2], in[3])));
      case CellKind::Nor2:
        return v4Not(v4Or(in[0], in[1]));
      case CellKind::Nor3:
        return v4Not(v4Or(v4Or(in[0], in[1]), in[2]));
      case CellKind::Nor4:
        return v4Not(v4Or(v4Or(in[0], in[1]), v4Or(in[2], in[3])));
      case CellKind::Xor2:
        return v4Xor(in[0], in[1]);
      case CellKind::Xnor2:
        return v4Not(v4Xor(in[0], in[1]));
      case CellKind::Mux2:
        return v4Mux(in[2], in[0], in[1]);
      case CellKind::Aoi21:
        return v4Not(v4Or(v4And(in[0], in[1]), in[2]));
      case CellKind::Oai21:
        return v4Not(v4And(v4Or(in[0], in[1]), in[2]));
      case CellKind::Aoi22:
        return v4Not(v4Or(v4And(in[0], in[1]), v4And(in[2], in[3])));
      case CellKind::Oai22:
        return v4Not(v4And(v4Or(in[0], in[1]), v4Or(in[2], in[3])));
      default:
        assert(false && "evalCell called on non-combinational kind");
        return V4::X;
    }
}

V4
evalSeqCell(CellKind k, V4 q, const V4 *in, bool &held)
{
    held = false;
    V4 d = in[0];
    V4 en = V4::One;
    V4 rstn = V4::One;
    switch (k) {
      case CellKind::Dff:
        break;
      case CellKind::Dffe:
        en = in[1];
        break;
      case CellKind::Dffr:
        rstn = in[1];
        break;
      case CellKind::Dffre:
        en = in[1];
        rstn = in[2];
        break;
      default:
        assert(false && "evalSeqCell called on non-sequential kind");
        return V4::X;
    }

    // Enable gating. en==0 provably holds the present value, including
    // unknown values: the flop cannot toggle, which the activity tracker
    // exploits. en==X takes the value only when hold and load agree.
    V4 loaded = d;
    if (en == V4::Zero) {
        held = true;
        loaded = q;
    } else if (en == V4::X) {
        loaded = (q == d && isKnown(q)) ? q : V4::X;
        held = (loaded == q && isKnown(q));
    }

    // Reset (modeled synchronously in the cycle-based simulator). An X
    // reset yields 0 only when the loaded value is also 0. Reset
    // overrides any hold the enable established: the output is
    // provably kept only if it was already 0.
    if (rstn == V4::Zero) {
        held = q == V4::Zero;
        return V4::Zero;
    }
    if (rstn == V4::X) {
        held = false;
        return loaded == V4::Zero ? V4::Zero : V4::X;
    }
    return loaded;
}

namespace {

/**
 * Fill a library with energies scaled from a unit energy/cap. Relative
 * cell weights loosely follow a 65 nm educational library: larger stacks
 * cost more; XOR/MUX cost more than NAND; flops dominate.
 */
void
fillParams(std::array<CellParams, kNumCellKinds> &p, double e,
           double cap, double leak, double clk_factor)
{
    auto set = [&](CellKind k, double rise, double fall, double pins,
                   double area, double lk) {
        CellParams &c = p[size_t(k)];
        c.riseEnergyJ = rise * e;
        c.fallEnergyJ = fall * e;
        c.inputCapF = pins * cap;
        c.areaUm2 = area;
        c.leakageW = lk * leak;
    };

    set(CellKind::Const0, 0.0, 0.0, 0.0, 0.5, 0.1);
    set(CellKind::Const1, 0.0, 0.0, 0.0, 0.5, 0.1);
    set(CellKind::Input, 0.3, 0.25, 0.0, 0.0, 0.0);
    set(CellKind::Buf, 0.7, 0.6, 1.0, 1.2, 0.8);
    set(CellKind::Inv, 0.5, 0.4, 1.0, 0.8, 0.6);
    set(CellKind::And2, 1.0, 0.85, 1.0, 1.6, 1.0);
    set(CellKind::And3, 1.3, 1.1, 1.0, 2.0, 1.3);
    set(CellKind::And4, 1.6, 1.35, 1.0, 2.4, 1.6);
    set(CellKind::Or2, 1.0, 0.85, 1.0, 1.6, 1.0);
    set(CellKind::Or3, 1.3, 1.1, 1.0, 2.0, 1.3);
    set(CellKind::Or4, 1.6, 1.35, 1.0, 2.4, 1.6);
    set(CellKind::Nand2, 0.8, 0.65, 1.0, 1.2, 0.9);
    set(CellKind::Nand3, 1.1, 0.9, 1.0, 1.6, 1.2);
    set(CellKind::Nand4, 1.4, 1.15, 1.0, 2.0, 1.5);
    set(CellKind::Nor2, 0.85, 0.7, 1.0, 1.2, 0.9);
    set(CellKind::Nor3, 1.15, 0.95, 1.0, 1.6, 1.2);
    set(CellKind::Nor4, 1.45, 1.2, 1.0, 2.0, 1.5);
    set(CellKind::Xor2, 1.8, 1.6, 1.3, 2.4, 1.6);
    set(CellKind::Xnor2, 1.8, 1.6, 1.3, 2.4, 1.6);
    set(CellKind::Mux2, 1.6, 1.4, 1.1, 2.4, 1.5);
    set(CellKind::Aoi21, 1.1, 0.9, 1.0, 1.6, 1.1);
    set(CellKind::Oai21, 1.1, 0.9, 1.0, 1.6, 1.1);
    set(CellKind::Aoi22, 1.4, 1.2, 1.0, 2.0, 1.4);
    set(CellKind::Oai22, 1.4, 1.2, 1.0, 2.0, 1.4);
    set(CellKind::Dff, 3.2, 2.9, 1.0, 4.8, 2.5);
    set(CellKind::Dffe, 3.6, 3.2, 1.0, 5.6, 2.8);
    set(CellKind::Dffr, 3.5, 3.1, 1.0, 5.4, 2.7);
    set(CellKind::Dffre, 3.9, 3.5, 1.0, 6.2, 3.0);

    // Clock pin energy: paid every cycle by every flop whether or not it
    // toggles. This models the clock tree + local clock buffering and
    // produces the power floor visible in the paper's traces (~1.3 mW
    // idle vs ~2.3 mW peak for openMSP430 at 100 MHz).
    for (CellKind k : {CellKind::Dff, CellKind::Dffe, CellKind::Dffr,
                       CellKind::Dffre}) {
        p[size_t(k)].clkPinEnergyJ = clk_factor * e;
    }
}

} // namespace

CellLibrary
CellLibrary::tsmc65Like()
{
    CellLibrary lib;
    lib.name_ = "ulpeak65";
    lib.vdd_ = 1.0;
    // Unit internal energy 2.0 fJ, unit pin cap 0.9 fF, wire load
    // 1.7 fF per fanout, unit leakage 7 nW, clock-pin factor 11.6.
    // Calibrated so the ~6.4k-gate / 534-flop core lands on the
    // paper's openMSP430 envelope at 1 V / 100 MHz: ~1.3 mW idle
    // floor, ~1.9-2.4 mW application peaks.
    lib.wireCapPerFanout_ = 1.7e-15;
    fillParams(lib.params_, 2.0e-15, 0.9e-15, 7.0e-9, 11.6);
    return lib;
}

CellLibrary
CellLibrary::f1610Like()
{
    CellLibrary lib;
    lib.name_ = "ulpeak130-f1610";
    lib.vdd_ = 3.0;
    // Older 130 nm node at 3 V: roughly 8x the per-transition energy
    // and a heavier clock tree, matching the MSP430F1610 measurements
    // of Chapter 2 (1.5-2.3 mW at just 8 MHz).
    lib.wireCapPerFanout_ = 3.2e-15;
    fillParams(lib.params_, 16.5e-15, 2.4e-15, 0.35e-9, 22.0);
    return lib;
}

double
CellLibrary::transitionEnergyJ(CellKind k, bool rising,
                               unsigned fanouts) const
{
    const CellParams &c = params_[size_t(k)];
    double internal = rising ? c.riseEnergyJ : c.fallEnergyJ;
    if (!rising)
        return internal;
    double load = wireCapPerFanout_ * fanouts;
    return internal + 0.5 * load * vdd_ * vdd_;
}

double
CellLibrary::maxTransitionEnergyJ(CellKind k, unsigned fanouts) const
{
    double r = transitionEnergyJ(k, true, fanouts);
    double f = transitionEnergyJ(k, false, fanouts);
    return r > f ? r : f;
}

double
CellLibrary::energyScale(double vdd_v) const
{
    if (!(vdd_v > 0.0) || !std::isfinite(vdd_v))
        throw std::invalid_argument(
            "CellLibrary::energyScale: vdd must be a positive finite "
            "voltage");
    double ratio = vdd_v / vdd_;
    return ratio * ratio;
}

double
CellLibrary::scaledTransitionEnergyJ(CellKind k, bool rising,
                                     unsigned fanouts,
                                     double vdd_v) const
{
    return transitionEnergyJ(k, rising, fanouts) * energyScale(vdd_v);
}

V4
CellLibrary::maxTransitionValue(CellKind k, unsigned phase) const
{
    // Rising transitions are the costlier ones for all cells in this
    // library (they charge the output load), so the maximum-power
    // transition is 0 -> 1.
    (void)k;
    return phase == 1 ? V4::Zero : V4::One;
}

} // namespace ulpeak
