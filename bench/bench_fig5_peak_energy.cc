/**
 * @file
 * Experiments E9/E15 -- Figure 5.2: normalized peak energy (J/cycle,
 * the maximum rate of energy consumption) from every technique, plus
 * the paper's headline averages.
 *
 * Reproduced claims: the design-tool energy requirement is the most
 * conservative by far (it ignores dynamic variation entirely);
 * GB-input beats the design tool for all benchmarks on energy (even
 * where it does not on power); X-based is the tightest guaranteed
 * bound; NPE varies less across benchmarks than peak power.
 */

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    auto dt = baseline::designToolRating(sys.netlist(), kFreq65);
    baseline::StressmarkConfig scfg;
    scfg.objective = baseline::StressObjective::AveragePower;
    auto stress = baseline::generateStressmark(sys, kFreq65, scfg);

    printHeader("Fig 5.2: normalized peak energy [pJ/cycle]");
    std::printf("%-10s %11s %12s %12s %10s %7s\n", "benchmark",
                "design_tool", "input-based", "GB input", "X-based",
                "safe");

    std::vector<double> xs, gbInputs, inputs;
    bool allSafe = true;
    for (const auto &b : bench430::allBenchmarks()) {
        isa::Image img = b.assembleImage();
        auto prof = baseline::profile(sys, img, b.makeInputs(8, 99),
                                      kFreq65);
        peak::Options opts;
        peak::Report x = peak::analyze(sys, img, opts);
        if (!x.ok) {
            std::printf("%-10s ANALYSIS FAILED: %s\n", b.name.c_str(),
                        x.error.c_str());
            return 1;
        }
        bool safe = x.npeJPerCycle >= prof.npeJPerCycle * 0.999;
        allSafe &= safe;
        xs.push_back(x.npeJPerCycle);
        gbInputs.push_back(prof.gbNpeJPerCycle);
        inputs.push_back(prof.npeJPerCycle);
        std::printf("%-10s %11.2f %12.2f %12.2f %10.2f %7s\n",
                    b.name.c_str(), dt.npeJPerCycle * 1e12,
                    prof.npeJPerCycle * 1e12,
                    prof.gbNpeJPerCycle * 1e12, x.npeJPerCycle * 1e12,
                    safe ? "yes" : "NO");
    }
    std::printf("%-10s %11.2f  (GA avg-power stressmark NPE; "
                "GB-stress = %.2f)\n",
                "stressmark", stress.npeJPerCycle * 1e12,
                stress.gbNpeJPerCycle * 1e12);

    printHeader("headline averages (paper: X-based is 17% / 26% / 47% "
                "below GB-input / GB-stress / design-tool)");
    std::vector<double> gbStress(xs.size(), stress.gbNpeJPerCycle);
    std::vector<double> dts(xs.size(), dt.npeJPerCycle);
    std::printf("X-based vs GB input-based : %5.1f%% lower\n",
                avgPctLower(xs, gbInputs));
    std::printf("X-based vs GB stressmark  : %5.1f%% lower\n",
                avgPctLower(xs, gbStress));
    std::printf("X-based vs design tool    : %5.1f%% lower\n",
                avgPctLower(xs, dts));
    std::printf("all X-based NPE bounds safe: %s\n",
                allSafe ? "yes" : "NO");
    return allSafe ? 0 : 1;
}
