/**
 * @file
 * GA-generated stressmarks, after Kim et al. (MICRO'12), retargeted
 * at peak instantaneous power and average power for the ULP core
 * (Section 4.2). A genome is a loop body of instruction templates
 * with evolvable operand values; fitness is measured by concrete
 * gate-level simulation with the full power model.
 */

#include "baseline/baselines.hh"

#include <algorithm>
#include <sstream>

namespace ulpeak {
namespace baseline {

namespace {

struct Gene {
    unsigned templateId = 0;
    uint16_t value = 0;
    uint8_t reg = 4; ///< r4..r11
};

constexpr unsigned kNumTemplates = 8;

/** Render one gene as assembly. */
std::string
geneAsm(const Gene &g)
{
    std::ostringstream os;
    unsigned r = 4 + (g.reg % 8);
    unsigned r2 = 4 + ((g.reg + 1) % 8);
    switch (g.templateId % kNumTemplates) {
      case 0: // hardware multiplier blast
        os << "  mov #" << g.value << ", &0x0130\n";
        os << "  mov #" << (g.value ^ 0xffff) << ", &0x0138\n";
        os << "  mov &0x013a, r" << r << "\n";
        break;
      case 1: // alternating-pattern XOR (flips every register bit)
        os << "  mov #0x5555, r" << r << "\n";
        os << "  xor #0xffff, r" << r << "\n";
        break;
      case 2: // carry-chain exerciser
        os << "  mov #0xffff, r" << r << "\n";
        os << "  add #" << g.value << ", r" << r << "\n";
        os << "  addc r" << r << ", r" << r2 << "\n";
        break;
      case 3: // memory ping-pong
        os << "  mov #" << g.value << ", &0x0300\n";
        os << "  mov &0x0300, r" << r << "\n";
        break;
      case 4: // stack traffic (POP generates peaks, Section 5.1)
        os << "  push #" << g.value << "\n";
        os << "  pop r" << r << "\n";
        break;
      case 5: // byte-swap / sign-extend churn
        os << "  mov #" << g.value << ", r" << r << "\n";
        os << "  swpb r" << r << "\n";
        os << "  sxt r" << r << "\n";
        break;
      case 6: // shift chain
        os << "  rla r" << r << "\n";
        os << "  rlc r" << r2 << "\n";
        break;
      default: // register shuffle with inverted patterns
        os << "  mov #" << g.value << ", r" << r << "\n";
        os << "  mov r" << r << ", r" << r2 << "\n";
        os << "  xor #0xaaaa, r" << r2 << "\n";
        break;
    }
    return os.str();
}

std::string
genomeAsm(const std::vector<Gene> &genome)
{
    std::string body;
    body += "  mov #0x0a00, sp\n";
    body += "  mov #0x5a80, &0x0120\n";
    body += "  mov #0, sr\n";
    for (unsigned r = 4; r <= 11; ++r)
        body += "  mov #0x5555, r" + std::to_string(r) + "\n";
    body += "stress_loop:\n";
    for (const Gene &g : genome)
        body += geneAsm(g);
    body += "  jmp stress_loop\n";
    return ".org 0xf800\nstart:\n" + body +
           "  .org 0xfffe\n  .word start\n";
}

} // namespace

StressmarkResult
generateStressmark(msp::System &sys, double freq_hz,
                   const StressmarkConfig &cfg)
{
    std::mt19937 rng(cfg.seed);
    power::PowerContext ctx(sys.netlist(), freq_hz);

    auto randomGene = [&]() {
        Gene g;
        g.templateId = unsigned(rng() % kNumTemplates);
        g.value = uint16_t(rng());
        g.reg = uint8_t(rng() % 8 + 4);
        return g;
    };

    struct Individual {
        std::vector<Gene> genome;
        double fitness = 0.0;
        double peakW = 0.0;
        double avgW = 0.0;
    };

    auto evaluate = [&](Individual &ind) {
        isa::Image image = isa::assemble(genomeAsm(ind.genome));
        power::ConcreteRunOptions opts;
        opts.recordTrace = false;
        opts.maxCycles = cfg.evalCycles;
        power::ConcreteRunResult run =
            power::runConcrete(sys, image, ctx, opts);
        ind.peakW = run.stats.peakW;
        ind.avgW = run.stats.avgW();
        ind.fitness = cfg.objective == StressObjective::PeakPower
                          ? ind.peakW
                          : ind.avgW;
    };

    std::vector<Individual> pop(cfg.population);
    for (Individual &ind : pop) {
        ind.genome.resize(cfg.genomeLength);
        for (Gene &g : ind.genome)
            g = randomGene();
        evaluate(ind);
    }

    StressmarkResult result;
    auto best = [&]() {
        return *std::max_element(pop.begin(), pop.end(),
                                 [](const Individual &a,
                                    const Individual &b) {
                                     return a.fitness < b.fitness;
                                 });
    };

    auto tournament = [&]() -> const Individual & {
        const Individual *winner = &pop[rng() % pop.size()];
        for (unsigned i = 1; i < cfg.tournament; ++i) {
            const Individual *c = &pop[rng() % pop.size()];
            if (c->fitness > winner->fitness)
                winner = c;
        }
        return *winner;
    };

    for (unsigned gen = 0; gen < cfg.generations; ++gen) {
        std::vector<Individual> next;
        next.push_back(best()); // elitism
        while (next.size() < pop.size()) {
            const Individual &a = tournament();
            const Individual &b = tournament();
            Individual child;
            size_t cut = rng() % cfg.genomeLength;
            child.genome.assign(a.genome.begin(),
                                a.genome.begin() + long(cut));
            child.genome.insert(child.genome.end(),
                                b.genome.begin() + long(cut),
                                b.genome.end());
            for (Gene &g : child.genome)
                if (std::uniform_real_distribution<>(0, 1)(rng) <
                    cfg.mutationRate)
                    g = randomGene();
            evaluate(child);
            next.push_back(std::move(child));
        }
        pop = std::move(next);
        result.generationBestW.push_back(best().fitness);
    }

    Individual winner = best();
    result.peakPowerW = winner.peakW;
    result.avgPowerW = winner.avgW;
    result.npeJPerCycle = winner.avgW / freq_hz;
    result.gbPeakPowerW = winner.peakW * kGuardband;
    result.gbNpeJPerCycle = result.npeJPerCycle * kGuardband;
    result.bestSource = genomeAsm(winner.genome);
    return result;
}

} // namespace baseline
} // namespace ulpeak
