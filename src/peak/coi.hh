/**
 * @file
 * Cycle-of-interest (COI) analysis, Section 3.5 / Figure 3.6: locate
 * the peak-power cycles, attribute them to the instructions in the
 * pipeline and to the microarchitectural modules consuming the power,
 * so software optimizations (Section 5.1) can target them.
 */

#ifndef ULPEAK_PEAK_COI_HH
#define ULPEAK_PEAK_COI_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "sym/symbolic_engine.hh"

namespace ulpeak {
namespace peak {

struct CoiCycle {
    uint64_t flatCycle = 0;
    double powerW = 0.0;
    uint32_t instrPc = 0;       ///< instruction in execute/mem
    std::string disasm;
    std::string fsmState;
    /** (module name, power W) sorted descending. */
    std::vector<std::pair<std::string, double>> modulePowerW;
};

struct CoiReport {
    std::vector<CoiCycle> cois;
    std::string toString() const;
};

/**
 * Extract the top-@p k distinct peak cycles from a symbolic result
 * produced with Options::recordModuleTrace. Cycles closer than
 * @p min_separation to an already-selected COI are skipped so the
 * report covers distinct peaks, not one peak's neighborhood.
 */
CoiReport analyzeCoi(const Netlist &nl, const sym::SymbolicResult &sr,
                     const isa::Image &image, unsigned k,
                     uint64_t min_separation = 4);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_COI_HH
