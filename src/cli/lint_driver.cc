#include "cli/lint_driver.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "cli/parse_util.hh"
#include "lint/lint.hh"
#include "msp/cpu.hh"
#include "scenario/scenario.hh"

namespace ulpeak {
namespace cli {

namespace {

/** Shortest round-trip double formatting (the `ulpeak` JSON idiom). */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

/** One scenario's constant-analysis results, display-ready. */
struct ScenarioLint {
    std::string name;
    lint::ConstAnalysis analysis;
    std::vector<lint::QuiescentCone> cones;
};

ScenarioLint
analyzeScenario(msp::System &sys, const scenario::Scenario &scn,
                const std::string &name)
{
    lint::ConstAnalysisOptions lo;
    lo.scenario = scn;
    const msp::CpuHandles &h = sys.handles();
    lo.portBits.assign(h.portIn.begin(), h.portIn.end());
    lo.drivenConstants = {{h.rstn, V4::One}, {h.irq, V4::Zero}};

    ScenarioLint out;
    out.name = name;
    out.analysis = lint::analyzeConstants(sys.netlist(), lo);
    out.cones = lint::quiescentCones(sys.netlist(), out.analysis);
    return out;
}

std::string
toLintJson(const Netlist &nl, const lint::StructuralReport &sr,
           const std::vector<ScenarioLint> &scens, double freq_hz,
           double wall_seconds, bool include_timings)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"netlist\": {\"gates\": " << nl.numGates()
       << ", \"modules\": " << nl.numModules() << "},\n";

    os << "  \"structural\": {\n"
       << "    \"errors\": " << sr.errors() << ",\n"
       << "    \"dead_gates\": " << sr.deadGates << ",\n"
       << "    \"fanout_hotspot_threshold\": "
       << sr.fanoutHotspotThreshold << ",\n";
    os << "    \"issues\": [\n";
    for (size_t i = 0; i < sr.issues.size(); ++i) {
        const lint::Issue &is = sr.issues[i];
        os << "      {\"kind\": \"" << lint::issueKindName(is.kind)
           << "\", \"severity\": \""
           << lint::severityName(is.severity) << "\", \"gates\": [";
        for (size_t g = 0; g < is.gates.size(); ++g)
            os << (g ? ", " : "") << is.gates[g];
        os << "], \"message\": \"" << jsonEscape(is.message) << "\"}"
           << (i + 1 < sr.issues.size() ? "," : "") << "\n";
    }
    os << "    ]\n  },\n";

    os << "  \"scenarios\": [\n";
    for (size_t s = 0; s < scens.size(); ++s) {
        const ScenarioLint &sl = scens[s];
        const lint::ConstAnalysis &a = sl.analysis;
        os << "    {\"name\": \"" << jsonEscape(sl.name) << "\",\n"
           << "     \"proven_const\": " << a.provenConst << ",\n"
           << "     \"proven_seq\": " << a.provenSeq << ",\n"
           << "     \"prunable\": " << a.prunable << ",\n"
           << "     \"max_prune_depth\": " << a.maxPruneDepth << ",\n"
           << "     \"quiescent_energy_j\": "
           << fmtDouble(a.quiescentEnergyJ) << ",\n"
           << "     \"switching_bound_j\": "
           << fmtDouble(a.switchingBoundJ) << ",\n"
           << "     \"static_peak_power_w\": "
           << fmtDouble(
                  a.staticPeakPowerW(freq_hz, nl.totalLeakageW()))
           << ",\n";
        os << "     \"cones\": [\n";
        for (size_t c = 0; c < sl.cones.size(); ++c) {
            const lint::QuiescentCone &qc = sl.cones[c];
            os << "       {\"module\": \"" << jsonEscape(qc.module)
               << "\", \"gates\": " << qc.gates
               << ", \"const\": " << qc.constGates
               << ", \"pruned\": " << qc.pruned
               << ", \"quiescent_energy_j\": "
               << fmtDouble(qc.quiescentEnergyJ) << "}"
               << (c + 1 < sl.cones.size() ? "," : "") << "\n";
        }
        os << "     ]}" << (s + 1 < scens.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (include_timings)
        os << ",\n  \"run\": {\"wall_seconds\": "
           << fmtDouble(wall_seconds) << "}";
    os << "\n}\n";
    return os.str();
}

} // namespace

std::string
lintUsage()
{
    return
        "usage: ullint [options]\n"
        "\n"
        "Static analysis of the gate-level core netlist: structural\n"
        "lint (combinational loops, floating inputs, multi-driven\n"
        "nets, dead gates, fanout hotspots) and scenario-aware\n"
        "constant-cone analysis (gates provably constant under a\n"
        "deployment scenario, the prune mask `ulpeak --static-prune`\n"
        "uses, and the static quiescent/switching energy split).\n"
        "\n"
        "options:\n"
        "  --scenario S[,S...]  scenarios to analyze (names or\n"
        "                     scenario .json files; default: the\n"
        "                     unconstrained scenario)\n"
        "  --jobs N           analyze scenarios in N workers\n"
        "                     (default 1; output byte-identical)\n"
        "  --freq HZ          clock for the static peak power bound\n"
        "                     (default 100e6)\n"
        "  --fanout-threshold N  fanout hotspot threshold\n"
        "                     (default 0 = max(64, gates/16))\n"
        "  --dead-limit N     dead gates listed per issue "
        "(default 16)\n"
        "  --json FILE        write the JSON report (\"-\" = stdout)\n"
        "  --no-timings       omit wall-time fields from --json\n"
        "                     (byte-identical across --jobs)\n"
        "  --quiet            suppress the stdout report\n"
        "  --help             this text\n"
        "\n"
        "exit status: 0 = no structural errors, 1 = structural\n"
        "errors found, 2 = usage error.\n";
}

bool
parseLintArgs(int argc, const char *const *argv, LintCliOptions &out,
              std::string &err)
{
    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            err = std::string(flag) + " expects a value";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            out.help = true;
        } else if (a == "--scenario") {
            if (!(v = value(i, "--scenario")))
                return false;
            std::stringstream ss(v);
            std::string item;
            while (std::getline(ss, item, ','))
                if (!item.empty())
                    out.scenarioSpecs.push_back(item);
            if (out.scenarioSpecs.empty()) {
                err = "--scenario: empty list";
                return false;
            }
        } else if (a == "--jobs") {
            if (!(v = value(i, "--jobs")))
                return false;
            if (!parsePositiveInt(v, out.jobs)) {
                err = std::string("--jobs expects a positive "
                                  "integer, got \"") + v + "\"";
                return false;
            }
        } else if (a == "--freq") {
            if (!(v = value(i, "--freq")))
                return false;
            if (!parsePositiveDouble(v, out.freqHz)) {
                err = std::string("--freq: bad frequency: ") + v;
                return false;
            }
        } else if (a == "--fanout-threshold") {
            if (!(v = value(i, "--fanout-threshold")))
                return false;
            uint64_t n = 0;
            if (!parseUnsignedInt(v, n) || n > 0xffffffffull) {
                err = std::string("--fanout-threshold expects an "
                                  "unsigned integer, got \"") +
                      v + "\"";
                return false;
            }
            out.fanoutThreshold = unsigned(n);
        } else if (a == "--dead-limit") {
            if (!(v = value(i, "--dead-limit")))
                return false;
            uint64_t n = 0;
            if (!parseUnsignedInt(v, n) || n > 0xffffffffull) {
                err = std::string("--dead-limit expects an unsigned "
                                  "integer, got \"") + v + "\"";
                return false;
            }
            out.maxDeadListed = unsigned(n);
        } else if (a == "--json") {
            if (!(v = value(i, "--json")))
                return false;
            out.jsonPath = v;
        } else if (a == "--no-timings") {
            out.noTimings = true;
        } else if (a == "--quiet") {
            out.quiet = true;
        } else {
            err = "unknown argument: " + a;
            return false;
        }
    }
    return true;
}

int
runLintCli(int argc, const char *const *argv)
{
    LintCliOptions cli;
    std::string err;
    if (!parseLintArgs(argc, argv, cli, err)) {
        std::fprintf(stderr, "ullint: %s\n%s", err.c_str(),
                     lintUsage().c_str());
        return 2;
    }
    if (cli.help) {
        std::fputs(lintUsage().c_str(), stdout);
        return 0;
    }

    try {
        auto t0 = std::chrono::steady_clock::now();
        msp::System sys(CellLibrary::tsmc65Like());
        const Netlist &nl = sys.netlist();

        lint::StructuralOptions sopts;
        sopts.fanoutHotspotThreshold = cli.fanoutThreshold;
        sopts.maxListedDeadGates = cli.maxDeadListed;
        lint::StructuralReport sr = lint::structuralLint(nl, sopts);

        // Resolve scenarios up front so a bad spec is a clean error
        // before any analysis output.
        std::vector<scenario::Scenario> scens;
        std::vector<std::string> names;
        if (cli.scenarioSpecs.empty()) {
            scens.emplace_back();
            names.emplace_back("unconstrained");
        } else {
            for (const std::string &spec : cli.scenarioSpecs) {
                scens.push_back(scenario::Scenario::resolve(spec));
                names.push_back(scens.back().name.empty()
                                    ? spec
                                    : scens.back().name);
            }
        }

        // Scenario analyses are independent; shard them over --jobs
        // threads. Results land by index, so the report is identical
        // for every job count. Each worker elaborates its own System
        // (analyzeConstants only reads the netlist, but handles()
        // lookups stay worker-local for symmetry with peak::Batch).
        std::vector<ScenarioLint> results(scens.size());
        unsigned jobs = std::min<unsigned>(
            cli.jobs, unsigned(scens.size() ? scens.size() : 1));
        if (jobs <= 1) {
            for (size_t i = 0; i < scens.size(); ++i)
                results[i] = analyzeScenario(sys, scens[i], names[i]);
        } else {
            std::atomic<size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (unsigned t = 0; t < jobs; ++t) {
                pool.emplace_back([&]() {
                    msp::System worker(CellLibrary::tsmc65Like());
                    for (size_t i = next.fetch_add(1);
                         i < scens.size(); i = next.fetch_add(1))
                        results[i] = analyzeScenario(
                            worker, scens[i], names[i]);
                });
            }
            for (std::thread &th : pool)
                th.join();
        }

        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (!cli.quiet) {
            std::printf("netlist: %zu gates, %zu modules\n",
                        nl.numGates(), nl.numModules());
            std::printf("structural: %zu issues (%zu errors), %zu "
                        "dead gates, hotspot threshold %u\n",
                        sr.issues.size(), sr.errors(), sr.deadGates,
                        sr.fanoutHotspotThreshold);
            for (const lint::Issue &is : sr.issues)
                std::printf("  [%s] %s: %s\n",
                            lint::severityName(is.severity),
                            lint::issueKindName(is.kind),
                            is.message.c_str());
            for (const ScenarioLint &sl : results) {
                const lint::ConstAnalysis &a = sl.analysis;
                std::printf(
                    "scenario %s: %zu proven const (%zu seq), %zu "
                    "prunable (depth %u), quiescent %s J/cycle, "
                    "switching bound %s J/cycle, static peak %s W\n",
                    sl.name.c_str(), a.provenConst, a.provenSeq,
                    a.prunable, a.maxPruneDepth,
                    fmtDouble(a.quiescentEnergyJ).c_str(),
                    fmtDouble(a.switchingBoundJ).c_str(),
                    fmtDouble(a.staticPeakPowerW(cli.freqHz,
                                                 nl.totalLeakageW()))
                        .c_str());
                for (const lint::QuiescentCone &qc : sl.cones)
                    if (qc.pruned)
                        std::printf("  %-12s %5zu gates, %5zu "
                                    "const, %5zu pruned\n",
                                    qc.module.c_str(), qc.gates,
                                    qc.constGates, qc.pruned);
            }
        }

        if (!cli.jsonPath.empty()) {
            std::string json = toLintJson(nl, sr, results, cli.freqHz,
                                          wall, !cli.noTimings);
            if (cli.jsonPath == "-") {
                std::fputs(json.c_str(), stdout);
            } else {
                std::ofstream out(cli.jsonPath);
                if (!out)
                    throw std::runtime_error("cannot write " +
                                             cli.jsonPath);
                out << json;
            }
        }
        return sr.errors() ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ullint: %s\n", e.what());
        return 1;
    }
}

} // namespace cli
} // namespace ulpeak
